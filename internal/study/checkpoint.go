package study

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"pnps/internal/scenario"
	"pnps/internal/soc"
	"pnps/internal/stats"
)

// Fingerprint identifies a study plan: merging or resuming checkpoints
// is only meaningful between executions of the identical matrix, so
// every checkpoint carries the shape it was cut from and every
// consumer verifies it.
type Fingerprint struct {
	Name     string       `json:"name,omitempty"`
	Base     BaseDigest   `json:"base"`
	Seed     int64        `json:"seed"`
	SeedMode SeedMode     `json:"seed_mode"`
	Reps     int          `json:"reps"`
	Axes     []AxisDigest `json:"axes,omitempty"`
	// VCHistBins/Lo/Hi pin the dwell-histogram configuration: merging
	// records with differently-binned histograms would corrupt them.
	VCHistBins int     `json:"vc_hist_bins,omitempty"`
	VCHistLo   float64 `json:"vc_hist_lo,omitempty"`
	VCHistHi   float64 `json:"vc_hist_hi,omitempty"`
}

// BaseDigest pins the scalar identity of the base scenario, so shards
// cut from materially different runs (a 60 s vs a 120 s study of the
// same matrix, say) refuse to merge. Function-valued spec fields
// (Profile, Source, Storage, axis setters) cannot be digested — the
// study definition is code; running shards with divergent code is on
// the caller.
type BaseDigest struct {
	Scenario    string           `json:"scenario,omitempty"`
	Duration    float64          `json:"duration"`
	Utilisation float64          `json:"utilisation,omitempty"`
	InitialVC   float64          `json:"initial_vc,omitempty"`
	TargetVolts float64          `json:"target_volts,omitempty"`
	MaxStep     float64          `json:"max_step,omitempty"`
	Boot        soc.OPP          `json:"boot"`
	Control     scenario.Control `json:"control"`
}

func baseDigest(sp scenario.Spec) BaseDigest {
	return BaseDigest{
		Scenario: sp.Name, Duration: sp.Duration, Utilisation: sp.Utilisation,
		InitialVC: sp.InitialVC, TargetVolts: sp.TargetVolts, MaxStep: sp.MaxStep,
		Boot: sp.Boot, Control: sp.Control,
	}
}

// AxisDigest is the serialisable identity of one axis: its name and
// level labels (the setters themselves cannot be serialised — the
// study definition is code, the checkpoint is data).
type AxisDigest struct {
	Name   string   `json:"name"`
	Levels []string `json:"levels"`
}

// Equal reports whether two fingerprints identify the same study —
// what a worker checks against a coordinator before leasing work, and
// what every checkpoint consumer checks before aggregating.
func (f Fingerprint) Equal(other Fingerprint) bool { return f.equal(other) }

// equal compares fingerprints structurally.
func (f Fingerprint) equal(other Fingerprint) bool {
	if f.Name != other.Name || f.Base != other.Base ||
		f.Seed != other.Seed || f.SeedMode != other.SeedMode ||
		f.Reps != other.Reps || f.VCHistBins != other.VCHistBins ||
		f.VCHistLo != other.VCHistLo || f.VCHistHi != other.VCHistHi ||
		len(f.Axes) != len(other.Axes) {
		return false
	}
	for i, ax := range f.Axes {
		o := other.Axes[i]
		if ax.Name != o.Name || len(ax.Levels) != len(o.Levels) {
			return false
		}
		for j, lv := range ax.Levels {
			if lv != o.Levels[j] {
				return false
			}
		}
	}
	return true
}

// Fingerprint validates the study and returns its serialisable
// identity — what the coordinator publishes and workers verify before
// leasing work, so flag or code skew between machines is caught before
// any simulation runs rather than at merge time.
func (st Study) Fingerprint() (Fingerprint, error) {
	p, err := st.plan()
	if err != nil {
		return Fingerprint{}, err
	}
	return st.fingerprint(p), nil
}

// fingerprint derives the study's identity from its validated plan.
func (st Study) fingerprint(p *plan) Fingerprint {
	f := Fingerprint{
		Name: st.Name, Base: baseDigest(st.Base),
		Seed: st.Seed, SeedMode: st.SeedMode, Reps: p.reps,
		VCHistBins: st.VCHistBins, VCHistLo: st.VCHistLo, VCHistHi: st.VCHistHi,
	}
	for _, ax := range st.Axes {
		d := AxisDigest{Name: ax.Name, Levels: make([]string, len(ax.Levels))}
		for i, lv := range ax.Levels {
			d.Levels[i] = lv.Label
		}
		f.Axes = append(f.Axes, d)
	}
	return f
}

func (st Study) checkFingerprint(p *plan, cp *Checkpoint) error {
	if err := cp.Validate(); err != nil {
		return err
	}
	if !st.fingerprint(p).equal(cp.Fingerprint) {
		return fmt.Errorf("study: checkpoint belongs to a different study (fingerprint mismatch)")
	}
	if cp.Total != p.total {
		return fmt.Errorf("study: checkpoint ledger size %d, study has %d tasks", cp.Total, p.total)
	}
	return nil
}

// TaskRange is a half-open [Lo, Hi) span of ledger task indices — the
// unit of the resumable seed-range ledger.
type TaskRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

func (r TaskRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// TaskRecord is one completed task in a checkpoint: the ledger index,
// its derived seed, and everything aggregation consumes. Dwell
// histograms are stored per task so that merged outcomes replay
// accumulation in canonical task order — the property that makes
// sharded and resumed studies bit-identical to unsharded runs.
type TaskRecord struct {
	Index   int        `json:"task"`
	Seed    int64      `json:"seed"`
	Group   string     `json:"group,omitempty"`
	Metrics RunMetrics `json:"metrics"`

	HistBins  []float64 `json:"hist_bins,omitempty"`
	HistUnder float64   `json:"hist_under,omitempty"`
	HistOver  float64   `json:"hist_over,omitempty"`
	HistTotal float64   `json:"hist_total,omitempty"`
}

// Checkpoint is the serialisable state of a partially (or fully)
// executed study: which ledger ranges are done and the per-task
// records needed to finish the aggregation later, elsewhere, or both.
// Shards produce checkpoints; Merge unions them; Study.Resume fills
// the gaps; Study.Outcome folds a complete checkpoint into a
// StudyOutcome bit-identical to an unsharded run's.
//
// Checkpoints travel across trust boundaries (files, the coordinator's
// HTTP submissions), so none of their invariants are assumed: every
// consumer re-validates record uniqueness, index bounds and histogram
// consistency via Validate, and Completed is always rebuilt from the
// records rather than trusted from the wire.
type Checkpoint struct {
	Fingerprint Fingerprint `json:"fingerprint"`
	// Total is the full ledger size (cells × reps).
	Total int `json:"total_tasks"`
	// Completed lists the done task ranges, sorted and coalesced.
	Completed []TaskRange `json:"completed"`
	// Records holds one entry per completed task, sorted by index.
	Records []TaskRecord `json:"records"`
}

// checkpointFrom cuts a checkpoint from executed task results.
func (st Study) checkpointFrom(p *plan, results []TaskResult) (*Checkpoint, error) {
	cp := &Checkpoint{
		Fingerprint: st.fingerprint(p),
		Total:       p.total,
		Records:     make([]TaskRecord, len(results)),
	}
	for i, r := range results {
		rec := TaskRecord{
			Index: r.Task.Index, Seed: r.Task.Seed, Group: r.Group, Metrics: r.Metrics,
		}
		if h := r.Hist; h != nil {
			rec.HistBins = append([]float64(nil), h.Bins...)
			rec.HistUnder = h.Underflow()
			rec.HistOver = h.Overflow()
			rec.HistTotal = h.Total()
		}
		cp.Records[i] = rec
	}
	sort.Slice(cp.Records, func(i, j int) bool { return cp.Records[i].Index < cp.Records[j].Index })
	cp.rebuildRanges()
	return cp, nil
}

// rebuildRanges recomputes Completed from the sorted Records.
func (cp *Checkpoint) rebuildRanges() {
	cp.Completed = cp.Completed[:0]
	for _, rec := range cp.Records {
		if n := len(cp.Completed); n > 0 && cp.Completed[n-1].Hi == rec.Index {
			cp.Completed[n-1].Hi++
			continue
		}
		cp.Completed = append(cp.Completed, TaskRange{Lo: rec.Index, Hi: rec.Index + 1})
	}
}

// completedSet expands the record list into a membership set.
func (cp *Checkpoint) completedSet() map[int]bool {
	done := make(map[int]bool, len(cp.Records))
	for _, rec := range cp.Records {
		done[rec.Index] = true
	}
	return done
}

// clone deep-copies the checkpoint.
func (cp *Checkpoint) clone() *Checkpoint {
	out := &Checkpoint{Fingerprint: cp.Fingerprint, Total: cp.Total}
	out.Records = make([]TaskRecord, len(cp.Records))
	for i, rec := range cp.Records {
		rec.HistBins = append([]float64(nil), rec.HistBins...)
		out.Records[i] = rec
	}
	out.rebuildRanges()
	return out
}

// Complete reports whether every ledger task has a record. The check is
// structural — the coalesced ranges must be exactly one span covering
// [0, Total) — not a record count: a corrupt checkpoint with duplicate
// indices can hold Total records without covering the ledger, and must
// not pass as complete (see Validate for the full invariant set).
func (cp *Checkpoint) Complete() bool {
	if len(cp.Records) != cp.Total {
		return false
	}
	if cp.Total == 0 {
		return true
	}
	return len(cp.Completed) == 1 && cp.Completed[0] == (TaskRange{Lo: 0, Hi: cp.Total})
}

// histTotalTol is the relative tolerance of the HistTotal-vs-bin-sum
// consistency check. The histogram's total accumulates observation by
// observation while the bins accumulate per bucket, so the two sums may
// disagree by floating-point regrouping error — bounded by n·ε over the
// observation count, orders of magnitude below this tolerance — but a
// corrupted or hand-edited counter disagrees grossly.
const histTotalTol = 1e-6

// Validate checks the structural invariants a checkpoint must satisfy
// before any of its records may be aggregated: record indices unique,
// sorted and inside [0, Total), and histogram state self-consistent
// (non-negative finite weights, bin count matching the fingerprint's
// pinned configuration, total matching the bin sum). Checkpoints cross
// trust boundaries — files that may have been corrupted or hand-edited,
// HTTP submissions from workers — so every deserialisation and merge
// boundary (ReadCheckpoint, Merge, Resume, Outcome, the coordinator's
// submission handler) re-validates rather than trusting its input.
func (cp *Checkpoint) Validate() error {
	if cp.Total < 0 {
		return fmt.Errorf("study: checkpoint ledger size %d is negative", cp.Total)
	}
	if len(cp.Records) > cp.Total {
		return fmt.Errorf("study: checkpoint holds %d records for a %d-task ledger", len(cp.Records), cp.Total)
	}
	prev := -1
	for i := range cp.Records {
		rec := &cp.Records[i]
		if rec.Index < 0 || rec.Index >= cp.Total {
			return fmt.Errorf("study: checkpoint record index %d outside ledger [0,%d)", rec.Index, cp.Total)
		}
		if rec.Index == prev {
			return fmt.Errorf("study: checkpoint holds duplicate records for task %d", rec.Index)
		}
		if rec.Index < prev {
			return fmt.Errorf("study: checkpoint records unsorted at task %d", rec.Index)
		}
		prev = rec.Index
		if err := rec.validateHist(cp.Fingerprint.VCHistBins); err != nil {
			return err
		}
	}
	return nil
}

// validateHist checks one record's serialised histogram state against
// the fingerprint's pinned bin count (0 = the study runs without dwell
// histograms, so records must not carry any).
func (rec *TaskRecord) validateHist(wantBins int) error {
	if len(rec.HistBins) == 0 {
		if rec.HistTotal != 0 || rec.HistUnder != 0 || rec.HistOver != 0 {
			return fmt.Errorf("study: task %d carries histogram counters without bins", rec.Index)
		}
		if wantBins > 0 {
			return fmt.Errorf("study: task %d missing its dwell histogram (study pins %d bins)", rec.Index, wantBins)
		}
		return nil
	}
	if len(rec.HistBins) != wantBins {
		return fmt.Errorf("study: task %d histogram has %d bins, study pins %d", rec.Index, len(rec.HistBins), wantBins)
	}
	sum := rec.HistUnder + rec.HistOver
	for b, w := range rec.HistBins {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("study: task %d histogram bin %d has invalid weight %g", rec.Index, b, w)
		}
		sum += w
	}
	for _, c := range []struct {
		name string
		w    float64
	}{{"underflow", rec.HistUnder}, {"overflow", rec.HistOver}, {"total", rec.HistTotal}} {
		if c.w < 0 || math.IsNaN(c.w) || math.IsInf(c.w, 0) {
			return fmt.Errorf("study: task %d histogram %s %g invalid", rec.Index, c.name, c.w)
		}
	}
	if diff := math.Abs(rec.HistTotal - sum); diff > histTotalTol*math.Max(1, math.Max(rec.HistTotal, sum)) {
		return fmt.Errorf("study: task %d histogram total %g inconsistent with bin sum %g", rec.Index, rec.HistTotal, sum)
	}
	return nil
}

// Missing returns the ledger ranges still to execute, sorted.
func (cp *Checkpoint) Missing() []TaskRange {
	var missing []TaskRange
	next := 0
	for _, r := range cp.Completed {
		if r.Lo > next {
			missing = append(missing, TaskRange{Lo: next, Hi: r.Lo})
		}
		next = r.Hi
	}
	if next < cp.Total {
		missing = append(missing, TaskRange{Lo: next, Hi: cp.Total})
	}
	return missing
}

// Merge folds the other checkpoint into cp. Both must stem from the
// same study, and their completed task sets must be disjoint — the
// ledger guarantees every task runs exactly once, so an overlap means
// two shards were mis-split and is an error, not a tie-break. Both
// sides are re-validated first (checkpoints cross trust boundaries),
// and the merged records are deep copies: other's backing arrays are
// never aliased, so later mutation of cp cannot corrupt its sources.
func (cp *Checkpoint) Merge(other *Checkpoint) error {
	if err := cp.Validate(); err != nil {
		return fmt.Errorf("study: merge target invalid: %w", err)
	}
	if err := other.Validate(); err != nil {
		return fmt.Errorf("study: merge source invalid: %w", err)
	}
	if !cp.Fingerprint.equal(other.Fingerprint) {
		return fmt.Errorf("study: merge of checkpoints from different studies")
	}
	if cp.Total != other.Total {
		return fmt.Errorf("study: merge of checkpoints with ledger sizes %d vs %d", cp.Total, other.Total)
	}
	done := cp.completedSet()
	for _, rec := range other.Records {
		if done[rec.Index] {
			return fmt.Errorf("study: merge overlap at task %d — shards must partition the ledger", rec.Index)
		}
	}
	for _, rec := range other.Records {
		rec.HistBins = append([]float64(nil), rec.HistBins...)
		cp.Records = append(cp.Records, rec)
	}
	sort.Slice(cp.Records, func(i, j int) bool { return cp.Records[i].Index < cp.Records[j].Index })
	cp.rebuildRanges()
	return nil
}

// MergeCheckpoints unions shard checkpoints into one. None of the
// inputs are mutated, and the result shares no backing arrays with
// them — records are deep-copied on the way in.
func MergeCheckpoints(cps ...*Checkpoint) (*Checkpoint, error) {
	if len(cps) == 0 {
		return nil, fmt.Errorf("study: nothing to merge")
	}
	if err := cps[0].Validate(); err != nil {
		return nil, err
	}
	out := cps[0].clone()
	for _, cp := range cps[1:] {
		if err := out.Merge(cp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteJSON serialises the checkpoint.
func (cp *Checkpoint) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// ReadCheckpoint deserialises a checkpoint written by WriteJSON. The
// record set is re-sorted, the completed ranges are rebuilt from it
// (never trusted from the file), and the result is validated: a
// truncated file, duplicate or out-of-range record indices, or
// inconsistent histogram counters are diagnostic errors here, not
// wrong aggregates later.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := json.NewDecoder(r).Decode(cp); err != nil {
		return nil, fmt.Errorf("study: reading checkpoint: %w", err)
	}
	sort.Slice(cp.Records, func(i, j int) bool { return cp.Records[i].Index < cp.Records[j].Index })
	cp.rebuildRanges()
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// Outcome folds a complete checkpoint into the study's aggregate. The
// checkpoint must belong to this study and cover the whole ledger; an
// incomplete checkpoint errors with the missing ranges. The outcome is
// bit-identical to an unsharded Run of the same study (its Results
// carry metrics and histograms but no *sim.Result — the simulations
// happened elsewhere).
func (st Study) Outcome(cp *Checkpoint) (*StudyOutcome, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if err := st.checkFingerprint(p, cp); err != nil {
		return nil, err
	}
	if !cp.Complete() {
		return nil, fmt.Errorf("study: checkpoint incomplete — missing task ranges %v", cp.Missing())
	}
	results := make([]TaskResult, len(cp.Records))
	for i, rec := range cp.Records {
		results[i] = TaskResult{
			Task:    p.task(st, rec.Index),
			Group:   rec.Group,
			Metrics: rec.Metrics,
		}
		if len(rec.HistBins) > 0 {
			h, err := stats.RestoreHistogram(st.VCHistLo, st.VCHistHi, rec.HistBins,
				rec.HistUnder, rec.HistOver, rec.HistTotal)
			if err != nil {
				return nil, fmt.Errorf("study: task %d histogram: %w", rec.Index, err)
			}
			results[i].Hist = h
		}
	}
	return st.outcomeFrom(p, results)
}
