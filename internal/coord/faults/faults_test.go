package faults

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newEchoServer counts requests per path and echoes a body that encodes
// the count, so tests can see exactly how many times the server was hit
// and which response copy they got.
func newEchoServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		io.Copy(io.Discard, r.Body)
		fmt.Fprintf(w, `{"hit":%d,"path":%q}`, n, r.URL.Path)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func get(t *testing.T, c *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestTransportDropRequest: the dropped exchange never reaches the
// server, and only the scheduled occurrence is dropped.
func TestTransportDropRequest(t *testing.T) {
	srv, hits := newEchoServer(t)
	tr := NewTransport(nil, Rule{Path: "/lease", Nth: 2, Op: DropRequest})
	c := &http.Client{Transport: tr}

	if _, err := get(t, c, srv.URL+"/lease"); err != nil {
		t.Fatalf("1st exchange: %v", err)
	}
	if _, err := get(t, c, srv.URL+"/lease"); err == nil || !strings.Contains(err.Error(), "drop-request") {
		t.Fatalf("2nd exchange not dropped: %v", err)
	}
	if _, err := get(t, c, srv.URL+"/lease"); err != nil {
		t.Fatalf("3rd exchange: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (the drop must not reach it)", hits.Load())
	}
	if tr.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", tr.Fired())
	}
}

// TestTransportDropResponse: the server processes the request but the
// client sees a transport error — the lost-200 shape.
func TestTransportDropResponse(t *testing.T) {
	srv, hits := newEchoServer(t)
	tr := NewTransport(nil, Rule{Nth: 1, Op: DropResponse})
	c := &http.Client{Transport: tr}

	if _, err := get(t, c, srv.URL+"/chunks"); err == nil || !strings.Contains(err.Error(), "drop-response") {
		t.Fatalf("response not dropped: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 — DropResponse must deliver the request", hits.Load())
	}
}

// TestTransportDupRequest: the server sees the exchange twice; the
// client gets the second response.
func TestTransportDupRequest(t *testing.T) {
	srv, hits := newEchoServer(t)
	tr := NewTransport(nil, Rule{Nth: 1, Op: DupRequest})
	c := &http.Client{Transport: tr}

	body, err := get(t, c, srv.URL+"/chunks")
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
	if !strings.Contains(body, `"hit":2`) {
		t.Fatalf("client got %q, want the second response", body)
	}
}

// TestTransportTruncateResponse: the delivered body is cut in half.
func TestTransportTruncateResponse(t *testing.T) {
	srv, _ := newEchoServer(t)
	tr := NewTransport(nil, Rule{Nth: 1, Op: TruncateResponse})
	c := &http.Client{Transport: tr}

	whole, err := get(t, &http.Client{}, srv.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	cut, err := get(t, c, srv.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) >= len(whole) || !strings.HasPrefix(whole, cut[:4]) {
		t.Fatalf("truncated response %q not a prefix-half of %q", cut, whole)
	}
}

// TestTransportRuleScoping: method/path filters and Times windows are
// honoured.
func TestTransportRuleScoping(t *testing.T) {
	srv, hits := newEchoServer(t)
	tr := NewTransport(nil, Rule{Method: http.MethodPost, Path: "/only", Nth: 1, Times: 2, Op: DropRequest})
	c := &http.Client{Transport: tr}

	if _, err := get(t, c, srv.URL+"/only"); err != nil { // GET: method filter skips
		t.Fatalf("GET through POST-only rule: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Post(srv.URL+"/only", "text/plain", strings.NewReader("x")); err == nil {
			t.Fatalf("POST %d not dropped", i+1)
		}
	}
	if _, err := c.Post(srv.URL+"/only", "text/plain", strings.NewReader("x")); err != nil {
		t.Fatalf("POST after Times window: %v", err)
	}
	if _, err := c.Post(srv.URL+"/other", "text/plain", strings.NewReader("x")); err != nil {
		t.Fatalf("POST to unmatched path: %v", err)
	}
	if hits.Load() != 3 || tr.Fired() != 2 {
		t.Fatalf("hits=%d fired=%d, want 3 and 2", hits.Load(), tr.Fired())
	}
}

// TestTransportDelay delays only the matched exchange.
func TestTransportDelay(t *testing.T) {
	srv, _ := newEchoServer(t)
	tr := NewTransport(nil, Rule{Nth: 1, Op: Delay, Delay: 50 * time.Millisecond})
	c := &http.Client{Transport: tr}
	start := time.Now()
	if _, err := get(t, c, srv.URL+"/x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("delayed exchange took %v, want ≥50ms", d)
	}
}

// TestChaosKillRestart: a killed backend answers 503 until restarted;
// Kill waits out in-flight requests so the next incarnation can safely
// take over shared state (the journal).
func TestChaosKillRestart(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.Write([]byte("gen1"))
	})
	chaos := NewChaos(slow)
	srv := httptest.NewServer(chaos)
	defer srv.Close()

	got := make(chan string, 1)
	go func() {
		b, _ := get(t, &http.Client{}, srv.URL)
		got <- b
	}()
	<-entered // the in-flight request is inside gen1

	killed := make(chan struct{})
	go func() {
		chaos.Kill() // must block on the in-flight request
		close(killed)
	}()
	select {
	case <-killed:
		t.Fatal("Kill returned while a request was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-killed
	if b := <-got; b != "gen1" {
		t.Fatalf("in-flight request got %q, want gen1", b)
	}

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("killed backend answered %d, want 503", resp.StatusCode)
	}

	chaos.Restart(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("gen2"))
	}))
	if b, err := get(t, &http.Client{}, srv.URL); err != nil || b != "gen2" {
		t.Fatalf("restarted backend: %q, %v", b, err)
	}
}
