// Command pnsim regenerates the paper's evaluation artefacts. Each
// experiment id corresponds to a table or figure of "Power Neutral
// Performance Scaling for Energy Harvesting MP-SoCs" (DATE 2017); see
// DESIGN.md for the index.
//
// Usage:
//
//	pnsim [-seed N] [-csv dir] <experiment>...
//	pnsim -all
//	pnsim -list
//
// With -csv, every series the experiment records is written as
// <dir>/<experiment>.csv for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pnps/internal/experiments"
	"pnps/internal/trace"
)

func main() {
	var (
		seed   = flag.Int64("seed", experiments.DefaultSeed, "random seed for stochastic scenarios")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV series into")
		all    = flag.Bool("all", false, "run every registered experiment")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "pnsim: no experiments given; try -list or -all")
		os.Exit(2)
	}
	for _, id := range ids {
		rep, err := experiments.Run(id, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		if *csvDir != "" && len(rep.Series) > 0 {
			if err := writeCSV(*csvDir, id, rep); err != nil {
				fmt.Fprintf(os.Stderr, "pnsim: csv %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir, id string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f, rep.Series...); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}
