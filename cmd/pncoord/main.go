// Command pncoord coordinates a distributed study: it serves the study
// matrix to any number of `pnstudy -worker` processes, leases ledger
// chunks to them over HTTP, folds their checkpoints in canonical ledger
// order as they land, re-leases the chunks of workers that die, and
// prints the final aggregate — bit-identical to what one machine
// running the whole study would have produced.
//
// Usage:
//
//	pncoord -addr :8080 -scenario stress-clouds -storage ideal:0.047,supercap:0.047 -util 1,0.6 -reps 256
//	pnstudy -worker http://host:8080        # on each machine, as many as you like
//
// The matrix flags are the same study-identity flags pnstudy takes;
// workers fetch them as a recipe from the coordinator, rebuild the
// study locally and refuse to run unless their fingerprint matches —
// version or flag skew between machines is caught before any chunk
// executes, not after results are polluted.
//
// Progress streams to stderr as chunks land, including live per-axis
// marginals. A chunk whose lease expires (dead or straggling worker)
// is re-leased with backoff; a chunk failing -max-attempts leases
// fails the whole study rather than silently dropping tasks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"pnps/internal/coord"
	"pnps/internal/studycli"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		scn      = flag.String("scenario", "stress-clouds", "registered base scenario")
		duration = flag.Float64("duration", 0, "override scenario duration, seconds (0 keeps the registered value)")
		storage  = flag.String("storage", "", "storage axis: ideal:F,supercap:F,hybrid:F:R")
		control  = flag.String("control", "", "control axis: pn, static, or governor names")
		util     = flag.String("util", "", "workload axis: utilisations in [0,1]")
		reps     = flag.Int("reps", 4, "Monte-Carlo repetitions per cell")
		seed     = flag.Int64("seed", 2017, "study base seed")
		paired   = flag.Bool("paired", false, "common random numbers: one realisation per repetition across all cells")
		bins     = flag.Int("bins", 250, "dwell-time voltage histogram bins (0 disables)")
		histLo   = flag.Float64("histlo", 0, "dwell histogram lower bound, volts")
		histHi   = flag.Float64("histhi", 10, "dwell histogram upper bound, volts")
		chunk    = flag.Int("chunk", 64, "lease granularity, ledger tasks per chunk")
		leaseTTL = flag.Duration("lease-ttl", 2*time.Minute, "lease time-to-live before a chunk is re-leased")
		attempts = flag.Int("max-attempts", 5, "lease attempts per chunk before the study fails")
		backoff  = flag.Duration("backoff", time.Second, "re-lease backoff per prior attempt")
		verbose  = flag.Bool("v", false, "log lease lifecycle events")
		cellsCSV = flag.String("cells-csv", "", "write per-cell aggregates as CSV to this file")
		runsCSV  = flag.String("runs-csv", "", "write per-run outcomes as CSV to this file")
		jsonOut  = flag.String("json", "", "write the full aggregate as JSON to this file")
	)
	flag.Parse()

	recipe := studycli.Config{
		Scenario: *scn, Duration: *duration,
		Storage: *storage, Control: *control, Util: *util,
		Reps: *reps, Seed: *seed, Paired: *paired,
		Bins: *bins, HistLo: *histLo, HistHi: *histHi,
	}
	st, err := recipe.Build()
	if err != nil {
		fatal(err)
	}
	rawRecipe, err := json.Marshal(recipe)
	if err != nil {
		fatal(err)
	}

	cfg := coord.Config{
		Study: st, Recipe: rawRecipe,
		ChunkSize: *chunk, LeaseTTL: *leaseTTL,
		MaxAttempts: *attempts, Backoff: *backoff,
		OnChunk: printChunkStatus,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv, err := coord.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	info := srv.Info()
	fmt.Fprintf(os.Stderr, "pncoord: study %s — %d tasks in %d chunks of %d, serving on %s\n",
		info.Name, info.TotalTasks, info.NumChunks, info.ChunkSize, ln.Addr())
	fmt.Fprintf(os.Stderr, "pncoord: join with: pnstudy -worker http://<this-host>%s\n", *addr)

	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	<-srv.Done()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)

	out, err := srv.Outcome()
	if err != nil {
		fatal(err)
	}
	studycli.PrintOutcome(os.Stdout, st, out)
	if *cellsCSV != "" {
		err = studycli.WriteFileAtomic(*cellsCSV, out.WriteCellsCSV)
	}
	if err == nil && *runsCSV != "" {
		err = studycli.WriteFileAtomic(*runsCSV, out.WriteRunsCSV)
	}
	if err == nil && *jsonOut != "" {
		err = studycli.WriteFileAtomic(*jsonOut, out.WriteJSON)
	}
	if err != nil {
		fatal(err)
	}
}

// printChunkStatus streams fold progress with the live survival
// marginals — the headline number of the study, watchable while the
// fleet works.
func printChunkStatus(s coord.Status) {
	fmt.Fprintf(os.Stderr, "pncoord: %d/%d chunks folded (%d/%d tasks, %d leased)",
		s.DoneChunks, s.TotalChunks, s.FoldedTasks, s.TotalTasks, s.LeasedChunks)
	for _, m := range s.Marginals {
		fmt.Fprintf(os.Stderr, "  %s=%s %.0f%%", m.Axis, m.Level, m.Summary.SurvivalRate*100)
	}
	fmt.Fprintln(os.Stderr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pncoord:", err)
	os.Exit(1)
}
