package pv

import (
	"fmt"
	"math"
	"testing"
)

// requireSameFloat asserts bitwise equality (treating any two NaNs as
// equal) so bit-identity claims are tested literally.
func requireSameFloat(t *testing.T, ctx string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: got %g (bits %#x), want %g (bits %#x)",
			ctx, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestSolveLanesBitIdenticalToScalar drives a lane set and a twin set
// of sequential Solvers through the same per-lane (v, g) histories —
// voltage ladders crossed with irradiance sweeps, cold starts and warm
// continuations — and requires every root and every error to be
// bit-identical, call after call (so the lockstep warm-state commits
// match the scalar ones too).
func TestSolveLanesBitIdenticalToScalar(t *testing.T) {
	const W = 7
	arr := SouthamptonArray()
	laneSolvers := make([]*Solver, W)
	refSolvers := make([]*Solver, W)
	for j := 0; j < W; j++ {
		laneSolvers[j] = NewSolver(arr)
		refSolvers[j] = NewSolver(arr)
	}
	var ls LaneSolver
	vs, gs, out := make([]float64, W), make([]float64, W), make([]float64, W)
	errs := make([]error, W)

	for step := 0; step < 400; step++ {
		for j := 0; j < W; j++ {
			// Per-lane voltage ladder and irradiance sweep, diverging
			// across lanes; irradiance ramps through dawn-like lows and
			// noon highs.
			vs[j] = 3.5 + 0.01*float64((step*(j+1))%250)
			gs[j] = 50 + float64((step*17+j*313)%1000)
		}
		ls.SolveLanes(laneSolvers, vs, gs, out, errs)
		for j := 0; j < W; j++ {
			want, wantErr := refSolvers[j].CurrentAt(vs[j], gs[j])
			if (errs[j] == nil) != (wantErr == nil) {
				t.Fatalf("step %d lane %d: err = %v, scalar %v", step, j, errs[j], wantErr)
			}
			requireSameFloat(t, fmt.Sprintf("step %d lane %d (v=%g g=%g)", step, j, vs[j], gs[j]), out[j], want)
		}
	}
}

// TestSolveLanesExactFallback forces the non-finite Newton path (a
// +Inf voltage makes the warm extrapolation and the residual blow up)
// and checks the lanes take the same exact bracketed fallback — same
// value, same error, same subsequent warm behaviour — as scalar solves,
// while healthy lanes in the same call are untouched.
func TestSolveLanesExactFallback(t *testing.T) {
	arr := SouthamptonArray()
	laneSolvers := []*Solver{NewSolver(arr), NewSolver(arr)}
	refSolvers := []*Solver{NewSolver(arr), NewSolver(arr)}
	var ls LaneSolver
	vs := []float64{4.8, 5.0}
	gs := []float64{800, 900}
	out := make([]float64, 2)
	errs := make([]error, 2)

	// Warm both lanes up first.
	ls.SolveLanes(laneSolvers, vs, gs, out, errs)
	for j := range refSolvers {
		want, _ := refSolvers[j].CurrentAt(vs[j], gs[j])
		requireSameFloat(t, fmt.Sprintf("warmup lane %d", j), out[j], want)
	}

	// Lane 0 goes hostile; lane 1 stays healthy.
	vs[0] = math.Inf(1)
	ls.SolveLanes(laneSolvers, vs, gs, out, errs)
	for j := range refSolvers {
		want, wantErr := refSolvers[j].CurrentAt(vs[j], gs[j])
		if (errs[j] == nil) != (wantErr == nil) {
			t.Fatalf("lane %d: err = %v, scalar %v", j, errs[j], wantErr)
		}
		requireSameFloat(t, fmt.Sprintf("hostile call lane %d", j), out[j], want)
	}
	if errs[0] == nil {
		t.Fatal("lane 0: expected the exact fallback to fail on v=+Inf")
	}

	// Both lanes must continue exactly like their scalar twins after the
	// fallback (the failed solve must not have perturbed warm state).
	vs[0] = 4.9
	ls.SolveLanes(laneSolvers, vs, gs, out, errs)
	for j := range refSolvers {
		want, wantErr := refSolvers[j].CurrentAt(vs[j], gs[j])
		if (errs[j] == nil) != (wantErr == nil) {
			t.Fatalf("post-fallback lane %d: err = %v, scalar %v", j, errs[j], wantErr)
		}
		requireSameFloat(t, fmt.Sprintf("post-fallback lane %d", j), out[j], want)
	}
}

// TestSolveLanesSharedMemoBoundaries interleaves lane solves with
// shared-memo Voc/MPP queries across the memoCap eviction boundary:
// lane solvers share one VocMemo, the reference solvers share another,
// and after thousands of distinct irradiances (memo misses, hits, a
// clear() eviction and re-fill) both populations must still agree
// bit-for-bit on Voc, MPP and the next lockstep current solves.
func TestSolveLanesSharedMemoBoundaries(t *testing.T) {
	const W = 3
	arr := SouthamptonArray()
	laneSolvers := make([]*Solver, W)
	refSolvers := make([]*Solver, W)
	laneMemo, refMemo := NewVocMemo(arr), NewVocMemo(arr)
	for j := 0; j < W; j++ {
		laneSolvers[j] = NewSolver(arr)
		refSolvers[j] = NewSolver(arr)
		if !laneSolvers[j].ShareVoc(laneMemo) || !refSolvers[j].ShareVoc(refMemo) {
			t.Fatal("ShareVoc refused value-equal arrays")
		}
	}
	var ls LaneSolver
	vs, gs, out := make([]float64, W), make([]float64, W), make([]float64, W)
	errs := make([]error, W)

	solveRound := func(ctx string, g0 float64) {
		t.Helper()
		for j := 0; j < W; j++ {
			vs[j] = 4.2 + 0.2*float64(j)
			gs[j] = g0 + 10*float64(j)
		}
		ls.SolveLanes(laneSolvers, vs, gs, out, errs)
		for j := 0; j < W; j++ {
			want, _ := refSolvers[j].CurrentAt(vs[j], gs[j])
			requireSameFloat(t, fmt.Sprintf("%s lane %d", ctx, j), out[j], want)
		}
	}

	solveRound("pre-fill", 700)

	// March the shared memo straight through its eviction boundary:
	// memoCap distinct irradiances fill it, the next insert clears and
	// re-fills. Queries rotate across lanes so hits and misses land on
	// different solvers than the ones that computed them.
	for i := 0; i <= memoCap+32; i++ {
		g := 100 + float64(i)*0.25
		lj, rj := i%W, i%W
		gotV, err := laneSolvers[lj].OpenCircuitVoltage(g)
		wantV, wantErr := refSolvers[rj].OpenCircuitVoltage(g)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("voc %d: err = %v, ref %v", i, err, wantErr)
		}
		requireSameFloat(t, fmt.Sprintf("voc %d (g=%g)", i, g), gotV, wantV)
	}
	if got, want := len(laneMemo.voc), len(refMemo.voc); got != want || got > memoCap {
		t.Fatalf("shared memo size %d, ref %d (cap %d): eviction boundary diverged", got, want, memoCap)
	}

	// MPP queries ride the (now partially re-filled) shared Voc memo and
	// each solver's warm Newton state; they must agree too.
	for j := 0; j < W; j++ {
		gotM, err := laneSolvers[j].MaximumPowerPoint(840 + float64(j))
		wantM, wantErr := refSolvers[j].MaximumPowerPoint(840 + float64(j))
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("mpp lane %d: err = %v, ref %v", j, err, wantErr)
		}
		requireSameFloat(t, fmt.Sprintf("mpp V lane %d", j), gotM.V, wantM.V)
		requireSameFloat(t, fmt.Sprintf("mpp I lane %d", j), gotM.I, wantM.I)
		requireSameFloat(t, fmt.Sprintf("mpp P lane %d", j), gotM.P, wantM.P)
	}

	solveRound("post-eviction", 860)
}

// TestSolveLanesColdRsZero covers the warm-extrapolation guard: with
// Rs = 0 the implicit-function extrapolation is skipped and the seed is
// the previous root alone, in both paths.
func TestSolveLanesColdRsZero(t *testing.T) {
	arr := SouthamptonArray()
	arr.Rs = 0
	lane, ref := NewSolver(arr), NewSolver(arr)
	var ls LaneSolver
	out, errs := make([]float64, 1), make([]error, 1)
	for step := 0; step < 50; step++ {
		v := 4.0 + 0.02*float64(step)
		ls.SolveLanes([]*Solver{lane}, []float64{v}, []float64{750}, out, errs)
		want, wantErr := ref.CurrentAt(v, 750)
		if (errs[0] == nil) != (wantErr == nil) {
			t.Fatalf("step %d: err = %v, scalar %v", step, errs[0], wantErr)
		}
		requireSameFloat(t, fmt.Sprintf("Rs=0 step %d", step), out[0], want)
	}
}

// BenchmarkSolveLanes compares one lockstep SolveLanes call over W
// warm solvers against the equivalent sequence of scalar CurrentAt
// calls, on the voltage ladder the simulation hot path produces. Zero
// allocs/op is the steady-state contract the pnbench -compare gate
// enforces.
func BenchmarkSolveLanes(b *testing.B) {
	const W = 8
	arr := SouthamptonArray()
	mk := func() ([]*Solver, []float64, []float64) {
		solvers := make([]*Solver, W)
		for j := range solvers {
			solvers[j] = NewSolver(arr)
		}
		return solvers, make([]float64, W), make([]float64, W)
	}
	b.Run(fmt.Sprintf("lanes=%d/lockstep", W), func(b *testing.B) {
		solvers, vs, gs := mk()
		var ls LaneSolver
		out, errs := make([]float64, W), make([]error, W)
		for j := 0; j < W; j++ {
			vs[j], gs[j] = 4.0, 850
		}
		// Warm call: grows the LaneSolver scratch once so the timed loop
		// measures the zero-alloc steady state.
		ls.SolveLanes(solvers, vs, gs, out, errs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < W; j++ {
				vs[j] = 4.0 + float64((i+j*25)%200)*0.01
				gs[j] = 850
			}
			ls.SolveLanes(solvers, vs, gs, out, errs)
		}
	})
	b.Run(fmt.Sprintf("lanes=%d/scalar", W), func(b *testing.B) {
		solvers, vs, gs := mk()
		var acc float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < W; j++ {
				vs[j] = 4.0 + float64((i+j*25)%200)*0.01
				gs[j] = 850
				iout, err := solvers[j].CurrentAt(vs[j], gs[j])
				if err != nil {
					b.Fatal(err)
				}
				acc += iout
			}
		}
		_ = acc
	})
}
