package study

import (
	"context"
	"fmt"

	"pnps/internal/stats"
)

// Chunked execution: the distributed-coordination unit of a study.
//
// A chunk is a fixed-size contiguous block of the task ledger —
// chunk i of size s covers tasks [i·s, min((i+1)·s, total)). Contiguity
// is what makes chunks pre-mergeable: because study aggregation replays
// the ledger strictly in canonical task order, a Folder can fold chunk
// checkpoints into the outcome accumulators the moment the in-order
// frontier reaches them and drop their per-task histogram state
// immediately, instead of holding every task's histogram until the
// whole study lands. A 10^6-task × many-bin-histogram study therefore
// costs the coordinator O(outstanding chunks × chunk size) histogram
// memory, not O(total tasks) — while staying bit-identical to an
// unsharded Run, because the fold runs through the exact accumulator
// Run itself uses.

// chunkCount returns the number of fixed-size chunks covering a ledger.
func chunkCount(total, size int) int { return (total + size - 1) / size }

// ChunkRange returns chunk i's half-open task range of a total-task
// ledger cut into size-task blocks (the last chunk may be short).
func ChunkRange(total, size, i int) TaskRange {
	lo := i * size
	hi := lo + size
	if hi > total {
		hi = total
	}
	return TaskRange{Lo: lo, Hi: hi}
}

// Chunks validates the study and returns its ledger cut into fixed-size
// contiguous blocks — the unit the coordinator leases to workers.
func (st Study) Chunks(size int) ([]TaskRange, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if size < 1 {
		return nil, fmt.Errorf("study: chunk size %d invalid", size)
	}
	out := make([]TaskRange, chunkCount(p.total, size))
	for i := range out {
		out[i] = ChunkRange(p.total, size, i)
	}
	return out, nil
}

// RunChunk executes the contiguous ledger block [r.Lo, r.Hi) and
// returns its checkpoint — the worker-side unit of coordinated
// execution. Like RunShard, the checkpoint merges and folds back into
// an outcome bit-identical to an unsharded Run.
func (st Study) RunChunk(ctx context.Context, r TaskRange) (*Checkpoint, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if r.Lo < 0 || r.Hi > p.total || r.Lo >= r.Hi {
		return nil, fmt.Errorf("study: chunk %v outside ledger [0,%d)", r, p.total)
	}
	tasks := make([]Task, 0, r.Hi-r.Lo)
	for t := r.Lo; t < r.Hi; t++ {
		tasks = append(tasks, p.task(st, t))
	}
	results, err := st.runTasks(ctx, p, tasks)
	if err != nil {
		return nil, err
	}
	return st.checkpointFrom(p, results)
}

// Folder streams chunk checkpoints into a study outcome. Chunks may
// arrive in any order — workers finish when they finish — but they are
// folded into the aggregation accumulators strictly at the in-order
// frontier: a landed chunk beyond the frontier is buffered, and the
// moment the frontier chunk arrives, it and every buffered successor
// are folded and their per-task histogram state is released. The
// resulting outcome is bit-identical to Study.Run because folding runs
// through the same ledger-order accumulator.
//
// Every folded checkpoint is validated first (Checkpoint.Validate,
// fingerprint equality, exact chunk coverage) — validation happens
// before the accumulators are touched, so a rejected submission leaves
// the folder unharmed. Folder is not safe for concurrent use; the
// coordinator serialises access.
type Folder struct {
	st        Study
	p         *plan
	fp        Fingerprint
	chunkSize int

	accum   *outcomeAccum
	pending map[int]*Checkpoint // landed chunks beyond the in-order frontier
	next    int                 // next chunk index to fold
	err     error               // sticky post-validation failure: the accumulators are suspect
}

// NewFolder validates the study and prepares a chunk folder for the
// given chunk size.
func (st Study) NewFolder(chunkSize int) (*Folder, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if chunkSize < 1 {
		return nil, fmt.Errorf("study: chunk size %d invalid", chunkSize)
	}
	return &Folder{
		st: st, p: p, fp: st.fingerprint(p), chunkSize: chunkSize,
		accum:   st.newOutcomeAccum(p),
		pending: map[int]*Checkpoint{},
	}, nil
}

// NumChunks returns the number of chunks in the ledger.
func (f *Folder) NumChunks() int { return chunkCount(f.p.total, f.chunkSize) }

// TotalTasks returns the ledger size.
func (f *Folder) TotalTasks() int { return f.p.total }

// FoldedTasks returns the number of tasks folded into the aggregate so
// far (tasks in buffered out-of-order chunks are not yet counted).
func (f *Folder) FoldedTasks() int { return f.accum.folded() }

// Fingerprint returns the study identity every folded checkpoint must
// carry.
func (f *Folder) Fingerprint() Fingerprint { return f.fp }

// Range returns chunk i's task range.
func (f *Folder) Range(i int) TaskRange { return ChunkRange(f.p.total, f.chunkSize, i) }

// Complete reports whether every chunk has been folded.
func (f *Folder) Complete() bool { return f.next == f.NumChunks() && f.err == nil }

// Fold accepts chunk i's checkpoint. The checkpoint must validate, must
// carry the folder's study fingerprint, and must cover exactly chunk
// i's task range; anything else is rejected with a diagnostic error and
// no state change. Folding the same chunk twice is an error — the
// coordinator's lease protocol makes duplicates a bug, not a race.
func (f *Folder) Fold(i int, cp *Checkpoint) error {
	if f.err != nil {
		return fmt.Errorf("study: folder failed earlier: %w", f.err)
	}
	if i < 0 || i >= f.NumChunks() {
		return fmt.Errorf("study: chunk %d outside [0,%d)", i, f.NumChunks())
	}
	if _, dup := f.pending[i]; dup || i < f.next {
		return fmt.Errorf("study: chunk %d already folded", i)
	}
	if err := cp.Validate(); err != nil {
		return err
	}
	if !f.fp.equal(cp.Fingerprint) {
		return fmt.Errorf("study: chunk %d checkpoint belongs to a different study (fingerprint mismatch)", i)
	}
	if cp.Total != f.p.total {
		return fmt.Errorf("study: chunk %d checkpoint ledger size %d, study has %d tasks", i, cp.Total, f.p.total)
	}
	r := f.Range(i)
	if len(cp.Completed) != 1 || cp.Completed[0] != r {
		return fmt.Errorf("study: chunk %d checkpoint covers %v, want exactly %v", i, cp.Completed, r)
	}
	f.pending[i] = cp
	for {
		next, ok := f.pending[f.next]
		if !ok {
			return nil
		}
		delete(f.pending, f.next)
		if err := f.foldChunk(next); err != nil {
			// Validation above makes this unreachable for hostile input;
			// if it ever fires the accumulators are part-updated, so the
			// folder refuses all further work.
			f.err = err
			return err
		}
		f.next++
	}
}

// foldChunk replays one in-order chunk's records through the outcome
// accumulator.
func (f *Folder) foldChunk(cp *Checkpoint) error {
	for _, rec := range cp.Records {
		r := TaskResult{Task: f.p.task(f.st, rec.Index), Group: rec.Group, Metrics: rec.Metrics}
		if len(rec.HistBins) > 0 {
			h, err := stats.RestoreHistogram(f.st.VCHistLo, f.st.VCHistHi, rec.HistBins,
				rec.HistUnder, rec.HistOver, rec.HistTotal)
			if err != nil {
				return fmt.Errorf("study: task %d histogram: %w", rec.Index, err)
			}
			r.Hist = h
		}
		if err := f.accum.add(r); err != nil {
			return err
		}
	}
	return nil
}

// Missing returns the chunk indices not yet folded or buffered.
func (f *Folder) Missing() []int {
	var out []int
	for i := f.next; i < f.NumChunks(); i++ {
		if _, ok := f.pending[i]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// Marginals snapshots the live per-axis marginal summaries over the
// tasks folded so far — what the coordinator streams as chunks land.
func (f *Folder) Marginals() []Marginal { return f.accum.marginals() }

// Outcome finalises a complete folder into the study outcome,
// bit-identical to an unsharded Study.Run.
func (f *Folder) Outcome() (*StudyOutcome, error) {
	if f.err != nil {
		return nil, fmt.Errorf("study: folder failed earlier: %w", f.err)
	}
	if !f.Complete() {
		return nil, fmt.Errorf("study: fold incomplete — %d of %d tasks folded, missing chunks %v",
			f.FoldedTasks(), f.p.total, f.Missing())
	}
	return f.accum.outcome()
}
