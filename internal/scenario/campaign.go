package scenario

import (
	"context"
	"errors"
	"fmt"

	"pnps/internal/batch"
	"pnps/internal/sim"
	"pnps/internal/stats"
)

// Variant perturbs the spec for one campaign run. It receives the run
// index k and the run's derived seed (already decorrelated from the base
// seed via batch.Seed) and mutates the copied spec in place — swap the
// storage model, scale a parameter, change the weather. The seed passed
// on to Assemble is the same derived seed, so weather realisations vary
// per run even with a nil Variant.
type Variant func(k int, seed int64, s *Spec)

// GroupFunc labels one campaign run for grouped aggregation. It runs
// after Vary, so the label can reflect the perturbation (e.g. the
// storage model swapped in); the spec is passed by value — grouping
// classifies a run, it cannot change it (mutate in Vary instead). Runs
// sharing a label aggregate into one GroupSummary.
type GroupFunc func(k int, seed int64, s Spec) string

// DefaultStabilityBands are the fractional supply-stability bands every
// campaign run accumulates online (±5%, the paper's headline metric,
// and ±10%): campaigns report within-band stability without retaining
// any trace.
var DefaultStabilityBands = []float64{0.05, 0.10}

// Campaign fans Monte-Carlo variations of a base scenario across the
// deterministic batch engine: run k executes Base (perturbed by Vary)
// with seed batch.Seed(Seed, k). Results are collected in run order and
// aggregated sequentially, so a campaign's Outcome is bit-identical for
// any Workers value.
//
// Campaigns are trace-free by default: each run carries online
// observers (stability bands, the supply envelope, optionally a
// dwell-time voltage histogram) instead of time series, so memory per
// in-flight run is O(1) and a 10k-run campaign needs no more memory
// than its worker count times one run.
type Campaign struct {
	// Base is the scenario every run starts from.
	Base Spec
	// Runs is the number of Monte-Carlo repetitions (must be positive).
	Runs int
	// Seed is the campaign base seed; per-run seeds derive from it.
	Seed int64
	// Vary, when non-nil, perturbs the spec for each run; a nil Vary
	// varies only the seed (independent weather realisations).
	Vary Variant
	// Group, when non-nil, labels each run; the Outcome then carries one
	// GroupSummary per distinct label (in first-occurrence run order)
	// alongside the overall Summary.
	Group GroupFunc
	// Workers bounds concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// OnProgress, when non-nil, is called after each completed run with
	// (completed, total).
	OnProgress func(completed, total int)
	// KeepSeries retains per-run time series. Off by default: a
	// campaign of long scenarios would otherwise hold every trace of
	// every run in memory at once. Stability and envelope aggregation
	// are identical either way — the online accumulators are
	// bit-identical to the series analyses.
	KeepSeries bool
	// StabilityBands overrides DefaultStabilityBands (fractional
	// half-widths around the run's target voltage). The ±5% band the
	// Summary aggregates is always included, whatever is listed here.
	StabilityBands []float64
	// VCHistBins, when positive, attaches a per-run dwell-time histogram
	// of the supply voltage with this many bins over [VCHistLo,
	// VCHistHi) and merges them (in run order) into Outcome.VCHistogram
	// — the campaign-level "time at each operating voltage" distribution
	// (paper Fig. 13) without any trace.
	VCHistBins         int
	VCHistLo, VCHistHi float64
}

// RunResult pairs one campaign run with its identity.
type RunResult struct {
	// Index is the run's position in the campaign (0-based).
	Index int
	// Seed is the derived per-run seed.
	Seed int64
	// Group is the aggregation label assigned by Campaign.Group ("" when
	// ungrouped).
	Group string
	// Spec is the (possibly perturbed) scenario the run executed.
	Spec Spec
	// Result is the simulation outcome.
	Result *sim.Result

	// vcHist is the per-run dwell-time histogram (VCHistBins > 0 only),
	// merged into Outcome.VCHistogram during summarise.
	vcHist *stats.Histogram
}

// Summary aggregates campaign runs deterministically (in run order).
// Each stats.Summary carries the quantile band (P5/P25/median/P75/P95)
// alongside the moments.
type Summary struct {
	// Runs is the number of completed runs.
	Runs int
	// SurvivalRate is the fraction of runs without a brownout.
	SurvivalRate float64
	// TotalBrownouts counts brownouts across all runs.
	TotalBrownouts int
	// Stability summarises the per-run fraction of time within ±5% of
	// the target voltage — computed by the online stability observers,
	// so it is available (and bit-identical) with or without KeepSeries.
	Stability stats.Summary
	// Instructions summarises per-run completed instructions.
	Instructions stats.Summary
	// LifetimeSeconds summarises per-run alive time.
	LifetimeSeconds stats.Summary
	// FinalVC summarises the per-run final supply voltage.
	FinalVC stats.Summary
	// MinVC summarises the per-run supply-voltage minimum (from the
	// online envelope; the paper's brownout-margin view).
	MinVC stats.Summary
	// StorageEnergyDeltaJ summarises per-run stored-energy change
	// (end − start), joules.
	StorageEnergyDeltaJ stats.Summary
}

// GroupSummary is the aggregate of the runs sharing one Group label.
type GroupSummary struct {
	// Name is the group label.
	Name string
	// Summary is the group's aggregate.
	Summary Summary
}

// Outcome is a completed campaign.
type Outcome struct {
	// Results holds every run in campaign order. Trace-free campaigns
	// retain only scalar outcomes per run (sim.Result without series).
	Results []RunResult
	// Summary is the deterministic aggregate over all runs.
	Summary Summary
	// Groups holds one aggregate per Campaign.Group label, ordered by
	// first occurrence; nil when the campaign was ungrouped.
	Groups []GroupSummary
	// VCHistogram is the run-order merge of the per-run dwell-time
	// voltage histograms (VCHistBins > 0 only).
	VCHistogram *stats.Histogram
}

// summaryBand is the fractional band Summary.Stability aggregates (the
// paper's headline ±5%).
const summaryBand = 0.05

// stabilityBands returns the effective per-run stability bands. The
// summary band is guaranteed to be present: without it, every run's
// StabilityWithin(0.05) would be NaN trace-free and the campaign's
// headline stability aggregate would silently vanish.
func (c Campaign) stabilityBands() []float64 {
	bands := c.StabilityBands
	if len(bands) == 0 {
		bands = DefaultStabilityBands
	}
	for _, pct := range bands {
		if pct == summaryBand {
			return bands
		}
	}
	return append(append([]float64(nil), bands...), summaryBand)
}

// Run executes the campaign. Runs are independent simulations fanned
// over batch.Map; a failing run fails the campaign (index-ordered error
// aggregation), and cancelling ctx abandons unstarted runs.
func (c Campaign) Run(ctx context.Context) (*Outcome, error) {
	if c.Runs <= 0 {
		return nil, fmt.Errorf("scenario: campaign needs a positive run count, got %d", c.Runs)
	}
	if c.VCHistBins > 0 && !(c.VCHistHi > c.VCHistLo) {
		return nil, fmt.Errorf("scenario: campaign VC histogram bounds [%g,%g) invalid", c.VCHistLo, c.VCHistHi)
	}
	bands := c.stabilityBands()
	// Derive every run's spec, seed and group up front, deterministically.
	runs := make([]RunResult, c.Runs)
	for k := range runs {
		seed := batch.Seed(c.Seed, k)
		sp := c.Base
		if !c.KeepSeries {
			sp.SkipSeries = true
		}
		if c.Vary != nil {
			c.Vary(k, seed, &sp)
		}
		runs[k] = RunResult{Index: k, Seed: seed, Spec: sp}
		if c.Group != nil {
			runs[k].Group = c.Group(k, seed, sp)
		}
	}
	type runOutput struct {
		res    *sim.Result
		vcHist *stats.Histogram
	}
	results, err := batch.Map(ctx, runs, func(_ context.Context, r RunResult) (runOutput, error) {
		cfg, err := r.Spec.Assemble(r.Seed)
		if err != nil {
			return runOutput{}, fmt.Errorf("campaign run %d (seed %d): %w", r.Index, r.Seed, err)
		}
		// Attach the per-run online observers: stability bands always
		// (appended to any spec-level bands), the dwell histogram when
		// configured. Fresh slices per run — specs fan out across
		// workers and must not share mutable state.
		cfg.StabilityBands = append(append([]float64(nil), cfg.StabilityBands...), bands...)
		var out runOutput
		if c.VCHistBins > 0 {
			tis, err := sim.NewTimeInStateObserver(sim.ChanVC, c.VCHistLo, c.VCHistHi, c.VCHistBins)
			if err != nil {
				return runOutput{}, fmt.Errorf("campaign run %d: %w", r.Index, err)
			}
			out.vcHist = tis.Hist
			cfg.Observers = append(append([]sim.Observer(nil), cfg.Observers...), tis)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return runOutput{}, fmt.Errorf("campaign run %d (seed %d): %w", r.Index, r.Seed, err)
		}
		out.res = res
		return out, nil
	}, batch.Options{Workers: c.Workers, OnProgress: c.OnProgress})
	if err != nil {
		return nil, err
	}
	for k := range runs {
		runs[k].Result = results[k].res
		runs[k].vcHist = results[k].vcHist
	}
	out := &Outcome{Results: runs}
	if err := out.summarise(c); err != nil {
		return nil, err
	}
	return out, nil
}

// summaryAccum collects the per-run scalars of one aggregation bucket.
type summaryAccum struct {
	stability, instr, life, finalVC, minVC, deltaJ []float64
	survived, brownouts                            int
}

func newSummaryAccum(capacity int) *summaryAccum {
	return &summaryAccum{
		stability: make([]float64, 0, capacity),
		instr:     make([]float64, 0, capacity),
		life:      make([]float64, 0, capacity),
		finalVC:   make([]float64, 0, capacity),
		minVC:     make([]float64, 0, capacity),
		deltaJ:    make([]float64, 0, capacity),
	}
}

func (a *summaryAccum) add(res *sim.Result) {
	if !res.BrownedOut {
		a.survived++
	}
	a.brownouts += res.Brownouts
	a.stability = append(a.stability, res.StabilityWithin(summaryBand))
	a.instr = append(a.instr, res.Instructions)
	a.life = append(a.life, res.LifetimeSeconds)
	a.finalVC = append(a.finalVC, res.FinalVC)
	a.minVC = append(a.minVC, res.VCEnvelope.Min)
	a.deltaJ = append(a.deltaJ, res.StorageEnergyEndJ-res.StorageEnergyStartJ)
}

func (a *summaryAccum) summary() (Summary, error) {
	n := len(a.instr)
	s := Summary{
		Runs:           n,
		SurvivalRate:   float64(a.survived) / float64(n),
		TotalBrownouts: a.brownouts,
	}
	var err error
	if s.Stability, err = stats.Summarize(a.stability); err != nil {
		return s, err
	}
	if s.Instructions, err = stats.Summarize(a.instr); err != nil {
		return s, err
	}
	if s.LifetimeSeconds, err = stats.Summarize(a.life); err != nil {
		return s, err
	}
	if s.FinalVC, err = stats.Summarize(a.finalVC); err != nil {
		return s, err
	}
	if s.MinVC, err = stats.Summarize(a.minVC); err != nil {
		return s, err
	}
	if s.StorageEnergyDeltaJ, err = stats.Summarize(a.deltaJ); err != nil {
		return s, err
	}
	return s, nil
}

// summarise computes the aggregates strictly in run order, so the
// Outcome is bit-identical at any worker count.
func (o *Outcome) summarise(c Campaign) error {
	n := len(o.Results)
	if n == 0 {
		return errors.New("scenario: empty campaign")
	}
	overall := newSummaryAccum(n)
	var groupOrder []string
	groups := map[string]*summaryAccum{}
	for i := range o.Results {
		r := &o.Results[i]
		overall.add(r.Result)
		if c.Group != nil {
			g, ok := groups[r.Group]
			if !ok {
				g = newSummaryAccum(0)
				groups[r.Group] = g
				groupOrder = append(groupOrder, r.Group)
			}
			g.add(r.Result)
		}
		if r.vcHist != nil {
			if o.VCHistogram == nil {
				merged := *r.vcHist // copy bounds; reuse the first run's bins
				merged.Bins = append([]float64(nil), r.vcHist.Bins...)
				o.VCHistogram = &merged
			} else if err := o.VCHistogram.Merge(r.vcHist); err != nil {
				return err
			}
			// Merged; drop the per-run histogram so a 10k-run campaign
			// does not keep O(runs × bins) dead weight alive through
			// the Outcome.
			r.vcHist = nil
		}
	}
	var err error
	if o.Summary, err = overall.summary(); err != nil {
		return err
	}
	for _, name := range groupOrder {
		s, err := groups[name].summary()
		if err != nil {
			return err
		}
		o.Groups = append(o.Groups, GroupSummary{Name: name, Summary: s})
	}
	return nil
}
