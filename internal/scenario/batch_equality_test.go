package scenario

import (
	"fmt"
	"testing"

	"pnps/internal/buffer"
	"pnps/internal/sim"
	"pnps/internal/soc"
	"pnps/internal/testutil"
)

// TestBatchEngineBitIdenticalToScalar is the tentpole property test: the
// batched lockstep engine must produce bit-identical results to the
// scalar engine — every scalar outcome, controller stat, envelope and
// captured series — across every registered scenario crossed with all
// three storage families, at batch widths 1 and 8 (plus 16 with twice
// the seeds outside -short, so the widest stage slab and W=8's
// multi-group packing are both covered). The per-cell seeds make the
// lanes diverge (different cloud draws → different event times, rejects
// and interrupt schedules), so lockstep interleaving, per-lane
// divergence fallback and rejoin are all exercised. CI runs this suite
// under -race.
func TestBatchEngineBitIdenticalToScalar(t *testing.T) {
	const width8 = 8
	lanes := width8
	widths := []int{1, width8}
	if !testing.Short() {
		lanes = 2 * width8
		widths = append(widths, 2*width8)
	}
	storages := []struct {
		name string
		mk   func() sim.Storage
	}{
		{"idealcap", func() sim.Storage { return nil }}, // spec default: ideal 47 mF
		{"supercap", func() sim.Storage {
			return sim.NewSupercap(buffer.Supercap{
				Farads: 47e-3, ESROhms: 0.05, LeakOhms: 5000, VMax: soc.MaxOperatingVolts,
			})
		}},
		{"hybridcap", func() sim.Storage {
			return sim.HybridCap{NodeFarads: 10e-3, ReservoirFarads: 47e-3,
				DiodeDropVolts: 0.35, DiodeOhms: 0.2, ChargeOhms: 10, LeakOhms: 5000}
		}},
	}

	names := Names()
	if len(names) < 10 {
		t.Fatalf("registry has %d scenarios, want the 10 built-ins", len(names))
	}
	for si, name := range names {
		for sti, st := range storages {
			t.Run(fmt.Sprintf("%s/%s", name, st.name), func(t *testing.T) {
				spec := MustLookup(name)
				// Short spans keep the full matrix fast while leaving
				// enough time for interrupts, brownouts and governor
				// ticks to fire on the stressed scenarios.
				if spec.Duration > 6 {
					spec.Duration = 6
				}
				if s := st.mk(); s != nil {
					spec.Storage = s
				}

				seeds := make([]int64, lanes)
				specs := make([]Spec, lanes)
				for i := range seeds {
					seeds[i] = int64(1000*si + 100*sti + i)
					specs[i] = spec
				}

				// Scalar reference, one run at a time.
				want := make([]*sim.Result, lanes)
				for i, seed := range seeds {
					res, err := spec.Run(seed)
					if err != nil {
						t.Fatalf("scalar seed %d: %v", seed, err)
					}
					want[i] = res
				}

				for _, w := range widths {
					cfgs, err := AssembleGroup(specs, seeds)
					if err != nil {
						t.Fatalf("W=%d AssembleGroup: %v", w, err)
					}
					results, errs := sim.BatchEngine{W: w}.RunGroup(cfgs)
					for i := range results {
						if errs[i] != nil {
							t.Fatalf("W=%d lane %d: %v", w, i, errs[i])
						}
						testutil.RequireEqualResults(t,
							fmt.Sprintf("W=%d lane %d (seed %d)", w, i, seeds[i]),
							results[i], want[i])
					}
				}
			})
		}
	}
}

// TestBatchEngineMixedSpecsOneBatch packs heterogeneous cells — distinct
// scenarios, storage dimensions (1-state ideal cap and 2-state hybrid)
// and control schemes — into one lockstep batch and requires every lane
// to match its scalar reference, pinning that lane packing never leaks
// state across cells.
func TestBatchEngineMixedSpecsOneBatch(t *testing.T) {
	mix := []struct {
		name string
		seed int64
	}{
		{"stress-clouds", 1}, {"steady-sun", 2}, {"fig6-shadow", 3},
		{"fig11-bench", 4}, {"table2-harvest", 5}, {"stress-hybrid", 6},
	}
	specs := make([]Spec, len(mix))
	seeds := make([]int64, len(mix))
	for i, m := range mix {
		s := MustLookup(m.name)
		if s.Duration > 6 {
			s.Duration = 6
		}
		specs[i], seeds[i] = s, m.seed
	}

	want := make([]*sim.Result, len(mix))
	for i := range specs {
		res, err := specs[i].Run(seeds[i])
		if err != nil {
			t.Fatalf("scalar %s: %v", mix[i].name, err)
		}
		want[i] = res
	}

	cfgs, err := AssembleGroup(specs, seeds)
	if err != nil {
		t.Fatal(err)
	}
	results, errs := sim.RunBatch(cfgs)
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("lane %d (%s): %v", i, mix[i].name, errs[i])
		}
		testutil.RequireEqualResults(t, fmt.Sprintf("lane %d (%s)", i, mix[i].name), results[i], want[i])
	}
}
