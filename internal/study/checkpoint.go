package study

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pnps/internal/scenario"
	"pnps/internal/soc"
	"pnps/internal/stats"
)

// Fingerprint identifies a study plan: merging or resuming checkpoints
// is only meaningful between executions of the identical matrix, so
// every checkpoint carries the shape it was cut from and every
// consumer verifies it.
type Fingerprint struct {
	Name     string       `json:"name,omitempty"`
	Base     BaseDigest   `json:"base"`
	Seed     int64        `json:"seed"`
	SeedMode SeedMode     `json:"seed_mode"`
	Reps     int          `json:"reps"`
	Axes     []AxisDigest `json:"axes,omitempty"`
	// VCHistBins/Lo/Hi pin the dwell-histogram configuration: merging
	// records with differently-binned histograms would corrupt them.
	VCHistBins int     `json:"vc_hist_bins,omitempty"`
	VCHistLo   float64 `json:"vc_hist_lo,omitempty"`
	VCHistHi   float64 `json:"vc_hist_hi,omitempty"`
}

// BaseDigest pins the scalar identity of the base scenario, so shards
// cut from materially different runs (a 60 s vs a 120 s study of the
// same matrix, say) refuse to merge. Function-valued spec fields
// (Profile, Source, Storage, axis setters) cannot be digested — the
// study definition is code; running shards with divergent code is on
// the caller.
type BaseDigest struct {
	Scenario    string           `json:"scenario,omitempty"`
	Duration    float64          `json:"duration"`
	Utilisation float64          `json:"utilisation,omitempty"`
	InitialVC   float64          `json:"initial_vc,omitempty"`
	TargetVolts float64          `json:"target_volts,omitempty"`
	MaxStep     float64          `json:"max_step,omitempty"`
	Boot        soc.OPP          `json:"boot"`
	Control     scenario.Control `json:"control"`
}

func baseDigest(sp scenario.Spec) BaseDigest {
	return BaseDigest{
		Scenario: sp.Name, Duration: sp.Duration, Utilisation: sp.Utilisation,
		InitialVC: sp.InitialVC, TargetVolts: sp.TargetVolts, MaxStep: sp.MaxStep,
		Boot: sp.Boot, Control: sp.Control,
	}
}

// AxisDigest is the serialisable identity of one axis: its name and
// level labels (the setters themselves cannot be serialised — the
// study definition is code, the checkpoint is data).
type AxisDigest struct {
	Name   string   `json:"name"`
	Levels []string `json:"levels"`
}

// equal compares fingerprints structurally.
func (f Fingerprint) equal(other Fingerprint) bool {
	if f.Name != other.Name || f.Base != other.Base ||
		f.Seed != other.Seed || f.SeedMode != other.SeedMode ||
		f.Reps != other.Reps || f.VCHistBins != other.VCHistBins ||
		f.VCHistLo != other.VCHistLo || f.VCHistHi != other.VCHistHi ||
		len(f.Axes) != len(other.Axes) {
		return false
	}
	for i, ax := range f.Axes {
		o := other.Axes[i]
		if ax.Name != o.Name || len(ax.Levels) != len(o.Levels) {
			return false
		}
		for j, lv := range ax.Levels {
			if lv != o.Levels[j] {
				return false
			}
		}
	}
	return true
}

// fingerprint derives the study's identity from its validated plan.
func (st Study) fingerprint(p *plan) Fingerprint {
	f := Fingerprint{
		Name: st.Name, Base: baseDigest(st.Base),
		Seed: st.Seed, SeedMode: st.SeedMode, Reps: p.reps,
		VCHistBins: st.VCHistBins, VCHistLo: st.VCHistLo, VCHistHi: st.VCHistHi,
	}
	for _, ax := range st.Axes {
		d := AxisDigest{Name: ax.Name, Levels: make([]string, len(ax.Levels))}
		for i, lv := range ax.Levels {
			d.Levels[i] = lv.Label
		}
		f.Axes = append(f.Axes, d)
	}
	return f
}

func (st Study) checkFingerprint(p *plan, cp *Checkpoint) error {
	if !st.fingerprint(p).equal(cp.Fingerprint) {
		return fmt.Errorf("study: checkpoint belongs to a different study (fingerprint mismatch)")
	}
	if cp.Total != p.total {
		return fmt.Errorf("study: checkpoint ledger size %d, study has %d tasks", cp.Total, p.total)
	}
	return nil
}

// TaskRange is a half-open [Lo, Hi) span of ledger task indices — the
// unit of the resumable seed-range ledger.
type TaskRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

func (r TaskRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// TaskRecord is one completed task in a checkpoint: the ledger index,
// its derived seed, and everything aggregation consumes. Dwell
// histograms are stored per task so that merged outcomes replay
// accumulation in canonical task order — the property that makes
// sharded and resumed studies bit-identical to unsharded runs.
type TaskRecord struct {
	Index   int        `json:"task"`
	Seed    int64      `json:"seed"`
	Group   string     `json:"group,omitempty"`
	Metrics RunMetrics `json:"metrics"`

	HistBins  []float64 `json:"hist_bins,omitempty"`
	HistUnder float64   `json:"hist_under,omitempty"`
	HistOver  float64   `json:"hist_over,omitempty"`
	HistTotal float64   `json:"hist_total,omitempty"`
}

// Checkpoint is the serialisable state of a partially (or fully)
// executed study: which ledger ranges are done and the per-task
// records needed to finish the aggregation later, elsewhere, or both.
// Shards produce checkpoints; Merge unions them; Study.Resume fills
// the gaps; Study.Outcome folds a complete checkpoint into a
// StudyOutcome bit-identical to an unsharded run's.
type Checkpoint struct {
	Fingerprint Fingerprint `json:"fingerprint"`
	// Total is the full ledger size (cells × reps).
	Total int `json:"total_tasks"`
	// Completed lists the done task ranges, sorted and coalesced.
	Completed []TaskRange `json:"completed"`
	// Records holds one entry per completed task, sorted by index.
	Records []TaskRecord `json:"records"`
}

// checkpointFrom cuts a checkpoint from executed task results.
func (st Study) checkpointFrom(p *plan, results []TaskResult) (*Checkpoint, error) {
	cp := &Checkpoint{
		Fingerprint: st.fingerprint(p),
		Total:       p.total,
		Records:     make([]TaskRecord, len(results)),
	}
	for i, r := range results {
		rec := TaskRecord{
			Index: r.Task.Index, Seed: r.Task.Seed, Group: r.Group, Metrics: r.Metrics,
		}
		if h := r.Hist; h != nil {
			rec.HistBins = append([]float64(nil), h.Bins...)
			rec.HistUnder = h.Underflow()
			rec.HistOver = h.Overflow()
			rec.HistTotal = h.Total()
		}
		cp.Records[i] = rec
	}
	sort.Slice(cp.Records, func(i, j int) bool { return cp.Records[i].Index < cp.Records[j].Index })
	cp.rebuildRanges()
	return cp, nil
}

// rebuildRanges recomputes Completed from the sorted Records.
func (cp *Checkpoint) rebuildRanges() {
	cp.Completed = cp.Completed[:0]
	for _, rec := range cp.Records {
		if n := len(cp.Completed); n > 0 && cp.Completed[n-1].Hi == rec.Index {
			cp.Completed[n-1].Hi++
			continue
		}
		cp.Completed = append(cp.Completed, TaskRange{Lo: rec.Index, Hi: rec.Index + 1})
	}
}

// completedSet expands the record list into a membership set.
func (cp *Checkpoint) completedSet() map[int]bool {
	done := make(map[int]bool, len(cp.Records))
	for _, rec := range cp.Records {
		done[rec.Index] = true
	}
	return done
}

// clone deep-copies the checkpoint.
func (cp *Checkpoint) clone() *Checkpoint {
	out := &Checkpoint{Fingerprint: cp.Fingerprint, Total: cp.Total}
	out.Records = make([]TaskRecord, len(cp.Records))
	for i, rec := range cp.Records {
		rec.HistBins = append([]float64(nil), rec.HistBins...)
		out.Records[i] = rec
	}
	out.rebuildRanges()
	return out
}

// Complete reports whether every ledger task has a record.
func (cp *Checkpoint) Complete() bool { return len(cp.Records) == cp.Total }

// Missing returns the ledger ranges still to execute, sorted.
func (cp *Checkpoint) Missing() []TaskRange {
	var missing []TaskRange
	next := 0
	for _, r := range cp.Completed {
		if r.Lo > next {
			missing = append(missing, TaskRange{Lo: next, Hi: r.Lo})
		}
		next = r.Hi
	}
	if next < cp.Total {
		missing = append(missing, TaskRange{Lo: next, Hi: cp.Total})
	}
	return missing
}

// Merge folds the other checkpoint into cp. Both must stem from the
// same study, and their completed task sets must be disjoint — the
// ledger guarantees every task runs exactly once, so an overlap means
// two shards were mis-split and is an error, not a tie-break.
func (cp *Checkpoint) Merge(other *Checkpoint) error {
	if !cp.Fingerprint.equal(other.Fingerprint) {
		return fmt.Errorf("study: merge of checkpoints from different studies")
	}
	if cp.Total != other.Total {
		return fmt.Errorf("study: merge of checkpoints with ledger sizes %d vs %d", cp.Total, other.Total)
	}
	done := cp.completedSet()
	for _, rec := range other.Records {
		if done[rec.Index] {
			return fmt.Errorf("study: merge overlap at task %d — shards must partition the ledger", rec.Index)
		}
	}
	cp.Records = append(cp.Records, other.Records...)
	sort.Slice(cp.Records, func(i, j int) bool { return cp.Records[i].Index < cp.Records[j].Index })
	cp.rebuildRanges()
	return nil
}

// MergeCheckpoints unions shard checkpoints into one (none are mutated).
func MergeCheckpoints(cps ...*Checkpoint) (*Checkpoint, error) {
	if len(cps) == 0 {
		return nil, fmt.Errorf("study: nothing to merge")
	}
	out := cps[0].clone()
	for _, cp := range cps[1:] {
		if err := out.Merge(cp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteJSON serialises the checkpoint.
func (cp *Checkpoint) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// ReadCheckpoint deserialises a checkpoint written by WriteJSON.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := json.NewDecoder(r).Decode(cp); err != nil {
		return nil, fmt.Errorf("study: reading checkpoint: %w", err)
	}
	sort.Slice(cp.Records, func(i, j int) bool { return cp.Records[i].Index < cp.Records[j].Index })
	cp.rebuildRanges()
	return cp, nil
}

// Outcome folds a complete checkpoint into the study's aggregate. The
// checkpoint must belong to this study and cover the whole ledger; an
// incomplete checkpoint errors with the missing ranges. The outcome is
// bit-identical to an unsharded Run of the same study (its Results
// carry metrics and histograms but no *sim.Result — the simulations
// happened elsewhere).
func (st Study) Outcome(cp *Checkpoint) (*StudyOutcome, error) {
	p, err := st.plan()
	if err != nil {
		return nil, err
	}
	if err := st.checkFingerprint(p, cp); err != nil {
		return nil, err
	}
	if !cp.Complete() {
		return nil, fmt.Errorf("study: checkpoint incomplete — missing task ranges %v", cp.Missing())
	}
	results := make([]TaskResult, len(cp.Records))
	for i, rec := range cp.Records {
		results[i] = TaskResult{
			Task:    p.task(st, rec.Index),
			Group:   rec.Group,
			Metrics: rec.Metrics,
		}
		if len(rec.HistBins) > 0 {
			h, err := stats.RestoreHistogram(st.VCHistLo, st.VCHistHi, rec.HistBins,
				rec.HistUnder, rec.HistOver, rec.HistTotal)
			if err != nil {
				return nil, fmt.Errorf("study: task %d histogram: %w", rec.Index, err)
			}
			results[i].Hist = h
		}
	}
	return st.outcomeFrom(p, results)
}
