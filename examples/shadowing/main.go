// Shadowing: the paper's Fig. 6 scenario — full sun interrupted by a deep
// cloud shadow. Compares the power-neutral controller against a static
// configuration, showing that only the controlled system survives.
//
//	go run ./examples/shadowing
package main

import (
	"fmt"
	"log"

	"pnps"
	"pnps/internal/soc"
	"pnps/internal/trace"
)

func main() {
	// A 60%-deep, 3-second shadow hits at t=4 s.
	profile := pnps.ShadowEvent(0.60, 4, 3)
	const (
		duration = 10.0
		capF     = 47e-3
		startV   = 5.35
	)

	// Run 1: power-neutral control from the minimal OPP.
	ctrlPlat := pnps.NewPlatform()
	ctrlPlat.Reset(0, pnps.MinOPP())
	ctrl, err := pnps.NewController(pnps.DefaultControllerParams(), startV, pnps.MinOPP(), 0)
	if err != nil {
		log.Fatal(err)
	}
	ctrlRes, err := pnps.Simulate(pnps.SimConfig{
		Array: pnps.NewPVArray(), Profile: profile,
		Capacitance: capF, InitialVC: startV,
		Platform: ctrlPlat, Controller: ctrl, Duration: duration,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run 2: static high configuration (what a non-adaptive system that
	// sized itself for full sun would run).
	staticPlat := pnps.NewPlatform()
	staticPlat.Reset(0, pnps.OPP{FreqIdx: 6, Config: soc.CoreConfig{Little: 4, Big: 3}})
	staticRes, err := pnps.Simulate(pnps.SimConfig{
		Array: pnps.NewPVArray(), Profile: profile,
		Capacitance: capF, InitialVC: startV,
		Platform: staticPlat, Duration: duration,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cloud-shadow stress test (10 s, 60% shadow at t=4 s)")
	fmt.Println()
	report := func(name string, r *pnps.SimResult) {
		minV, _ := r.VC.Min()
		fmt.Printf("%-22s survived=%-5v minVc=%.2fV instructions=%.1fG\n",
			name, !r.BrownedOut, minV, r.Instructions/1e9)
	}
	report("power-neutral:", ctrlRes)
	report("static 4xA7+3xA15:", staticRes)

	fmt.Println()
	fmt.Println("Supply voltage, power-neutral run:")
	fmt.Print(trace.ASCIIPlot(ctrlRes.VC, 72, 10))
	fmt.Println("Committed DVFS frequency:")
	fmt.Print(trace.ASCIIPlot(ctrlRes.FreqGHz, 72, 8))
}
