package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one experiment report from a seed.
type Runner func(seed int64) (*Report, error)

// Registry maps experiment ids (as used by cmd/pnsim) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":  Fig1,
		"fig3":  func(int64) (*Report, error) { return Fig3() },
		"fig4":  func(int64) (*Report, error) { return Fig4() },
		"fig6":  func(int64) (*Report, error) { return Fig6() },
		"fig7":  func(int64) (*Report, error) { return Fig7() },
		"fig10": func(int64) (*Report, error) { return Fig10() },
		"table1": func(int64) (*Report, error) {
			return Table1()
		},
		"fig11":  Fig11,
		"fig12":  Fig12,
		"fig13":  Fig13,
		"fig14":  Fig14,
		"table2": Table2,
		"fig15":  Fig15,
		"sweep": func(seed int64) (*Report, error) {
			return ParamSweep(SweepOptions{Seed: seed})
		},
		"ablation-semantics": AblationSemantics,
		"ablation-order":     AblationOrder,
		"mppt":               MPPTComparison,
		"predictive":         PredictiveComparison,
		"buffers":            BufferComparison,
	}
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, seed int64) (*Report, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(seed)
}
