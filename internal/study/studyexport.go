package study

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Study export: per-cell and per-run scalar outcomes as CSV (for
// external plotting and post-hoc analysis) and the full aggregate —
// cells, marginals, overall summary, dwell-time quantile bands — as
// JSON. Everything works trace-free.

func formatG(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// WriteCellsCSV writes one row per matrix cell: the axis labels
// followed by the cell's aggregate. Labels are user-supplied strings,
// so rows go through encoding/csv.
func (o *StudyOutcome) WriteCellsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(o.Axes)+12)
	for _, ax := range o.Axes {
		header = append(header, ax.Name)
	}
	header = append(header, "runs", "survival_rate", "brownouts",
		"stability_mean", "stability_p5", "stability_median", "stability_p95",
		"instructions_mean", "lifetime_s_mean", "min_vc_v_mean",
		"storage_denergy_j_mean", "dwell_vc_median")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range o.Cells {
		row := append([]string(nil), c.Cell.Labels...)
		s := c.Summary
		row = append(row,
			strconv.Itoa(s.Runs),
			formatG(s.SurvivalRate),
			strconv.Itoa(s.TotalBrownouts),
			formatG(s.Stability.Mean), formatG(s.Stability.P5),
			formatG(s.Stability.Median), formatG(s.Stability.P95),
			formatG(s.Instructions.Mean),
			formatG(s.LifetimeSeconds.Mean),
			formatG(s.MinVC.Mean),
			formatG(s.StorageEnergyDeltaJ.Mean),
		)
		if c.DwellVC != nil {
			row = append(row, formatG(c.DwellVC.Median))
		} else {
			row = append(row, "")
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRunsCSV writes one row of scalar outcomes per ledger task: the
// task identity (index, cell, repetition, seed), the cell's axis
// labels, and the run metrics.
func (o *StudyOutcome) WriteRunsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"task", "cell", "rep", "seed"}
	for _, ax := range o.Axes {
		header = append(header, ax.Name)
	}
	header = append(header, "survived", "brownouts", "lifetime_s", "instructions",
		"final_vc_v", "min_vc_v", "stability_pct5", "storage_denergy_j")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range o.Results {
		r := &o.Results[i]
		row := []string{
			strconv.Itoa(r.Task.Index),
			strconv.Itoa(r.Task.Cell),
			strconv.Itoa(r.Task.Rep),
			strconv.FormatInt(r.Task.Seed, 10),
		}
		row = append(row, o.Cells[r.Task.Cell].Cell.Labels...)
		m := r.Metrics
		row = append(row,
			strconv.FormatBool(m.Survived),
			strconv.Itoa(m.Brownouts),
			formatG(m.LifetimeSeconds),
			formatG(m.Instructions),
			formatG(m.FinalVC),
			formatG(m.MinVC),
			formatG(m.Stability),
			formatG(m.StorageEnergyDeltaJ),
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

type jsonBand struct {
	P5     float64 `json:"p5"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P95    float64 `json:"p95"`
}

func toJSONBand(b *QuantileBand) *jsonBand {
	if b == nil {
		return nil
	}
	return &jsonBand{P5: b.P5, P25: b.P25, Median: b.Median, P75: b.P75, P95: b.P95}
}

type jsonCell struct {
	Labels map[string]string `json:"labels"`
	Key    string            `json:"key"`
	jsonAggregate
	DwellVC *jsonBand `json:"dwell_vc,omitempty"`
}

type jsonMarginal struct {
	Axis  string `json:"axis"`
	Level string `json:"level"`
	jsonAggregate
}

type jsonStudy struct {
	Axes      []AxisDigest   `json:"axes,omitempty"`
	Summary   jsonAggregate  `json:"summary"`
	DwellVC   *jsonBand      `json:"dwell_vc,omitempty"`
	Cells     []jsonCell     `json:"cells"`
	Marginals []jsonMarginal `json:"marginals,omitempty"`
}

// WriteJSON writes the study aggregate — overall summary, per-cell and
// per-axis marginal summaries with quantile bands, and the dwell-time
// voltage quantiles when histograms ran — as indented JSON.
func (o *StudyOutcome) WriteJSON(w io.Writer) error {
	doc := jsonStudy{
		Axes:    o.Axes,
		Summary: toJSONAggregate(o.Summary),
		DwellVC: toJSONBand(o.DwellVC),
	}
	for _, c := range o.Cells {
		labels := make(map[string]string, len(o.Axes))
		for i, ax := range o.Axes {
			labels[ax.Name] = c.Cell.Labels[i]
		}
		doc.Cells = append(doc.Cells, jsonCell{
			Labels: labels, Key: c.Cell.Key,
			jsonAggregate: toJSONAggregate(c.Summary),
			DwellVC:       toJSONBand(c.DwellVC),
		})
	}
	for _, m := range o.Marginals {
		doc.Marginals = append(doc.Marginals, jsonMarginal{
			Axis: m.Axis, Level: m.Level, jsonAggregate: toJSONAggregate(m.Summary),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
