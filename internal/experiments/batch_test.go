package experiments

import (
	"context"
	"reflect"
	"testing"
)

// reducedSweep is a grid small enough for every CI run while still
// spanning multiple jobs per worker.
func reducedSweep(workers int) SweepOptions {
	return SweepOptions{
		VWidths:  []float64{0.144, 0.28},
		VQs:      []float64{0.0479, 0.08},
		Alphas:   []float64{0.12},
		Betas:    []float64{0.479, 0.8},
		Duration: 60,
		Workers:  workers,
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the concurrency-safety
// contract of the batch refactor: the same sweep on 1, 2 and 8 workers
// must produce bit-identical SweepPoint slices. Run under -race it
// doubles as a data-race probe over the whole simulation stack.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep: skipped with -short")
	}
	t.Parallel()
	var ref []SweepPoint
	for _, workers := range []int{1, 2, 8} {
		pts, err := RunSweep(reducedSweep(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(pts) != 8 {
			t.Fatalf("workers=%d: %d grid points, want 8", workers, len(pts))
		}
		if ref == nil {
			ref = pts
			continue
		}
		if !reflect.DeepEqual(ref, pts) {
			t.Errorf("workers=%d: results differ from workers=1:\n  ref: %+v\n  got: %+v",
				workers, ref, pts)
		}
	}
}

func TestSweepContextCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSweepContext(ctx, reducedSweep(2)); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}

func TestSweepProgressCallback(t *testing.T) {
	if testing.Short() {
		t.Skip("full reduced sweep: skipped with -short")
	}
	t.Parallel()
	opts := reducedSweep(4)
	var calls, lastDone, lastTotal int
	// Callback invocations are serialised and monotone by the batch
	// engine and all complete before RunSweep returns, so plain ints are
	// race-free here.
	opts.OnProgress = func(d, total int) {
		if d != lastDone+1 {
			t.Errorf("progress went %d -> %d, want monotone +1", lastDone, d)
		}
		calls++
		lastDone, lastTotal = d, total
	}
	if _, err := RunSweep(opts); err != nil {
		t.Fatal(err)
	}
	if calls != 8 || lastDone != 8 || lastTotal != 8 {
		t.Errorf("progress calls=%d last=%d/%d, want 8 calls ending 8/8", calls, lastDone, lastTotal)
	}
}

// TestRunAllFast executes the sub-second experiments concurrently and
// checks report ordering matches the id list.
func TestRunAllFast(t *testing.T) {
	t.Parallel()
	ids := []string{"fig4", "fig7", "fig10", "table1"}
	reps, err := RunAll(context.Background(), RunAllOptions{IDs: ids, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(ids) {
		t.Fatalf("%d reports for %d ids", len(reps), len(ids))
	}
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("report %d (%s) is nil", i, ids[i])
		}
		if rep.ID != ids[i] {
			t.Errorf("reports[%d].ID = %q, want %q — ordering broken", i, rep.ID, ids[i])
		}
	}
}

// TestRunAllMatchesSerial checks that a parallel RunAll reproduces the
// exact metrics of serial Run calls for deterministic experiments.
func TestRunAllMatchesSerial(t *testing.T) {
	t.Parallel()
	ids := []string{"fig4", "fig10"}
	reps, err := RunAll(context.Background(), RunAllOptions{IDs: ids, Seed: DefaultSeed, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		serial, err := Run(id, DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Metrics, reps[i].Metrics) {
			t.Errorf("%s: parallel metrics differ from serial", id)
		}
	}
}

func TestRunAllAggregatesUnknownIDs(t *testing.T) {
	t.Parallel()
	ids := []string{"fig4", "no-such-experiment", "fig10"}
	reps, err := RunAll(context.Background(), RunAllOptions{IDs: ids, Workers: 2})
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if reps[0] == nil || reps[2] == nil {
		t.Error("healthy experiments lost to one bad id")
	}
	if reps[1] != nil {
		t.Error("failed slot should be nil")
	}
}
