package workload

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Material selects the surface reflectance model, following smallpt.
type Material int

const (
	// Diffuse is an ideal Lambertian surface.
	Diffuse Material = iota
	// Specular is an ideal mirror.
	Specular
	// Refractive is glass (dielectric with Fresnel splitting).
	Refractive
)

// Sphere is the only primitive, as in smallpt.
type Sphere struct {
	Radius   float64
	Position Vec
	Emission Vec // radiance emitted (light sources)
	Colour   Vec // surface albedo
	Material Material
}

// Ray is an origin and a unit direction.
type Ray struct {
	Origin, Dir Vec
}

const eps = 1e-4

// Intersect returns the distance along r at which it hits the sphere, or
// 0 if it misses.
func (s *Sphere) Intersect(r Ray) float64 {
	op := s.Position.Sub(r.Origin)
	b := op.Dot(r.Dir)
	det := b*b - op.Dot(op) + s.Radius*s.Radius
	if det < 0 {
		return 0
	}
	det = math.Sqrt(det)
	if t := b - det; t > eps {
		return t
	}
	if t := b + det; t > eps {
		return t
	}
	return 0
}

// Scene is a collection of spheres plus a camera.
type Scene struct {
	Spheres []Sphere
	// CamPos and CamDir define the viewpoint.
	CamPos, CamDir Vec
}

// CornellScene returns the classic smallpt Cornell-box arrangement: two
// walls-as-giant-spheres box, a mirror ball, a glass ball and a ceiling
// light.
func CornellScene() *Scene {
	return &Scene{
		Spheres: []Sphere{
			{1e5, Vec{1e5 + 1, 40.8, 81.6}, Vec{}, Vec{0.75, 0.25, 0.25}, Diffuse},   // left wall
			{1e5, Vec{-1e5 + 99, 40.8, 81.6}, Vec{}, Vec{0.25, 0.25, 0.75}, Diffuse}, // right wall
			{1e5, Vec{50, 40.8, 1e5}, Vec{}, Vec{0.75, 0.75, 0.75}, Diffuse},         // back wall
			{1e5, Vec{50, 40.8, -1e5 + 170}, Vec{}, Vec{}, Diffuse},                  // front
			{1e5, Vec{50, 1e5, 81.6}, Vec{}, Vec{0.75, 0.75, 0.75}, Diffuse},         // floor
			{1e5, Vec{50, -1e5 + 81.6, 81.6}, Vec{}, Vec{0.75, 0.75, 0.75}, Diffuse}, // ceiling
			{16.5, Vec{27, 16.5, 47}, Vec{}, Vec{0.999, 0.999, 0.999}, Specular},     // mirror ball
			{16.5, Vec{73, 16.5, 78}, Vec{}, Vec{0.999, 0.999, 0.999}, Refractive},   // glass ball
			{600, Vec{50, 681.6 - 0.27, 81.6}, Vec{12, 12, 12}, Vec{}, Diffuse},      // light
		},
		CamPos: Vec{50, 52, 295.6},
		CamDir: Vec{0, -0.042612, -1}.Norm(),
	}
}

// intersect finds the nearest sphere hit by r.
func (sc *Scene) intersect(r Ray) (idx int, dist float64, ok bool) {
	dist = math.Inf(1)
	idx = -1
	for i := range sc.Spheres {
		if d := sc.Spheres[i].Intersect(r); d != 0 && d < dist {
			dist = d
			idx = i
		}
	}
	return idx, dist, idx >= 0
}

// Radiance evaluates the rendering equation along r with Russian-roulette
// path termination, exactly following smallpt's structure.
func (sc *Scene) Radiance(r Ray, depth int, rng *rand.Rand) Vec {
	idx, dist, ok := sc.intersect(r)
	if !ok {
		return Vec{}
	}
	obj := &sc.Spheres[idx]
	x := r.Origin.Add(r.Dir.Scale(dist))
	n := x.Sub(obj.Position).Norm()
	nl := n
	if n.Dot(r.Dir) >= 0 {
		nl = n.Scale(-1)
	}
	f := obj.Colour
	depth++
	if depth > 5 {
		// Russian roulette on the maximum reflectance.
		p := f.MaxComponent()
		if depth > 64 || p == 0 || rng.Float64() >= p {
			return obj.Emission
		}
		f = f.Scale(1 / p)
	}
	switch obj.Material {
	case Diffuse:
		r1 := 2 * math.Pi * rng.Float64()
		r2 := rng.Float64()
		r2s := math.Sqrt(r2)
		w := nl
		var u Vec
		if math.Abs(w.X) > 0.1 {
			u = Vec{0, 1, 0}.Cross(w).Norm()
		} else {
			u = Vec{1, 0, 0}.Cross(w).Norm()
		}
		v := w.Cross(u)
		d := u.Scale(math.Cos(r1) * r2s).
			Add(v.Scale(math.Sin(r1) * r2s)).
			Add(w.Scale(math.Sqrt(1 - r2))).Norm()
		return obj.Emission.Add(f.Mul(sc.Radiance(Ray{x, d}, depth, rng)))
	case Specular:
		refl := r.Dir.Sub(n.Scale(2 * n.Dot(r.Dir)))
		return obj.Emission.Add(f.Mul(sc.Radiance(Ray{x, refl}, depth, rng)))
	default: // Refractive
		reflRay := Ray{x, r.Dir.Sub(n.Scale(2 * n.Dot(r.Dir)))}
		into := n.Dot(nl) > 0
		nc, nt := 1.0, 1.5
		nnt := nt / nc
		if into {
			nnt = nc / nt
		}
		ddn := r.Dir.Dot(nl)
		cos2t := 1 - nnt*nnt*(1-ddn*ddn)
		if cos2t < 0 { // total internal reflection
			return obj.Emission.Add(f.Mul(sc.Radiance(reflRay, depth, rng)))
		}
		sign := -1.0
		if into {
			sign = 1.0
		}
		tdir := r.Dir.Scale(nnt).Sub(n.Scale(sign * (ddn*nnt + math.Sqrt(cos2t)))).Norm()
		a, b := nt-nc, nt+nc
		r0 := a * a / (b * b)
		c := 1 + ddn
		if !into {
			c = 1 - tdir.Dot(n)
		}
		re := r0 + (1-r0)*c*c*c*c*c
		tr := 1 - re
		p := 0.25 + 0.5*re
		if depth > 2 {
			if rng.Float64() < p {
				return obj.Emission.Add(f.Mul(sc.Radiance(reflRay, depth, rng).Scale(re / p)))
			}
			return obj.Emission.Add(f.Mul(sc.Radiance(Ray{x, tdir}, depth, rng).Scale(tr / (1 - p))))
		}
		both := sc.Radiance(reflRay, depth, rng).Scale(re).
			Add(sc.Radiance(Ray{x, tdir}, depth, rng).Scale(tr))
		return obj.Emission.Add(f.Mul(both))
	}
}

// RenderOptions configures a render.
type RenderOptions struct {
	// Width and Height are the image dimensions in pixels.
	Width, Height int
	// SamplesPerPixel matches the paper's quality setting (5 in Fig. 7).
	SamplesPerPixel int
	// Workers bounds render parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed fixes the Monte-Carlo sequence for reproducibility.
	Seed int64
}

// Validate checks the options.
func (o RenderOptions) Validate() error {
	if o.Width < 1 || o.Height < 1 {
		return fmt.Errorf("workload: image size %dx%d invalid", o.Width, o.Height)
	}
	if o.SamplesPerPixel < 1 {
		return fmt.Errorf("workload: need >=1 sample per pixel, got %d", o.SamplesPerPixel)
	}
	return nil
}

// Image is a simple linear-RGB framebuffer.
type Image struct {
	Width, Height int
	Pixels        []Vec // row-major, Pixels[y*Width+x]
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) Vec { return im.Pixels[y*im.Width+x] }

// MeanLuminance returns the average of the RGB means across the image —
// a cheap regression metric for tests.
func (im *Image) MeanLuminance() float64 {
	var sum float64
	for _, p := range im.Pixels {
		sum += (p.X + p.Y + p.Z) / 3
	}
	return sum / float64(len(im.Pixels))
}

// Render path-traces the scene, parallelised across scanlines — the same
// work division smallpt uses with OpenMP. It is deterministic for a fixed
// Seed regardless of worker count (each row derives its own RNG).
func (sc *Scene) Render(opts RenderOptions) (*Image, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	w, h := opts.Width, opts.Height
	img := &Image{Width: w, Height: h, Pixels: make([]Vec, w*h)}

	cx := Vec{X: float64(w) * 0.5135 / float64(h)}
	cy := cx.Cross(sc.CamDir).Norm().Scale(0.5135)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rows := make(chan int)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for y := range rows {
				rng := rand.New(rand.NewSource(opts.Seed ^ int64(y)*0x5851F42D4C957F2D))
				sc.renderRow(img, y, cx, cy, opts.SamplesPerPixel, rng)
			}
		}()
	}
	for y := 0; y < h; y++ {
		rows <- y
	}
	close(rows)
	wg.Wait()
	return img, nil
}

// renderRow renders one scanline with 2x2 subpixel tent-filter sampling,
// following smallpt.
func (sc *Scene) renderRow(img *Image, y int, cx, cy Vec, spp int, rng *rand.Rand) {
	w, h := img.Width, img.Height
	for x := 0; x < w; x++ {
		var pixel Vec
		for sy := 0; sy < 2; sy++ {
			for sx := 0; sx < 2; sx++ {
				var acc Vec
				for s := 0; s < spp; s++ {
					r1 := 2 * rng.Float64()
					dx := math.Sqrt(r1) - 1
					if r1 >= 1 {
						dx = 1 - math.Sqrt(2-r1)
					}
					r2 := 2 * rng.Float64()
					dy := math.Sqrt(r2) - 1
					if r2 >= 1 {
						dy = 1 - math.Sqrt(2-r2)
					}
					d := cx.Scale(((float64(sx)+0.5+dx)/2+float64(x))/float64(w) - 0.5).
						Add(cy.Scale(((float64(sy)+0.5+dy)/2+float64(y))/float64(h) - 0.5)).
						Add(sc.CamDir)
					ray := Ray{sc.CamPos.Add(d.Scale(140)), d.Norm()}
					acc = acc.Add(sc.Radiance(ray, 0, rng).Scale(1 / float64(spp)))
				}
				pixel = pixel.Add(Vec{clamp01(acc.X), clamp01(acc.Y), clamp01(acc.Z)}.Scale(0.25))
			}
		}
		img.Pixels[(h-y-1)*w+x] = pixel
	}
}
