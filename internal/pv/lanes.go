package pv

import "math"

// LaneSolver advances the warm-started implicit-diode solves of several
// Solvers in lockstep: one SolveLanes call computes, for every lane j,
// exactly what solvers[j].CurrentAt(vs[j], gs[j]) would — the same
// Newton iterate sequence, the same warm-state commit, the same exact
// bracketed fallback on hostile inputs — so per-lane results (and all
// subsequent warm-started solves on those Solvers) are bit-identical to
// sequential scalar solves. Only the cross-lane iteration order
// changes: every lane still running performs one Newton update per
// lockstep sweep, which keeps the per-lane model parameters hot and
// replaces W call/returns per operating point with one.
//
// The batched simulation engine uses this to evaluate all stepping
// lanes' PV operating points per RK stage in a single call. Lane memo
// state is untouched: Voc/MPP memos (shared or private) belong to the
// individual Solvers and behave identically under lane or scalar
// solves.
//
// The zero value is ready to use; scratch is sized on first call. A
// LaneSolver is not safe for concurrent use.
type LaneSolver struct {
	il, vt []float64
	act    []int
	fb     []int
}

// ensure sizes the per-lane scratch for n lanes, reusing capacity.
func (ls *LaneSolver) ensure(n int) {
	if cap(ls.il) < n {
		ls.il = make([]float64, n)
		ls.vt = make([]float64, n)
		ls.act = make([]int, 0, n)
		ls.fb = make([]int, 0, n)
	}
	ls.il, ls.vt = ls.il[:n], ls.vt[:n]
}

// SolveLanes solves the implicit single-diode equation of every lane in
// lockstep: lane j computes the terminal current of solvers[j] at
// voltage vs[j] and irradiance gs[j], writing the root to out[j] and
// the solve error (nil on success) to errs[j]. All five slices must
// have equal length. Semantics per lane are identical to
// Solver.CurrentAt, including the warm-state update observed by later
// solves on that Solver; a Solver must not appear in more than one lane
// of a call (its warm state would be advanced twice against one
// history).
func (ls *LaneSolver) SolveLanes(solvers []*Solver, vs, gs, out []float64, errs []error) {
	n := len(solvers)
	ls.ensure(n)
	act := ls.act[:0]
	fb := ls.fb[:0]

	// Seed every lane exactly as the scalar solve does: photocurrent at
	// this irradiance, previous root plus the implicit-function-theorem
	// extrapolation when warm.
	for j := 0; j < n; j++ {
		s := solvers[j]
		il := s.a.LightCurrent(gs[j])
		i := il
		if s.warm {
			i = s.prevI
			if s.a.Rs > 0 && s.prevDf != 0 {
				i += -(s.prevDf+1)/(s.a.Rs*s.prevDf)*(vs[j]-s.prevV) - (il-s.prevIl)/s.prevDf
			}
		}
		ls.il[j], ls.vt[j] = il, s.a.thermalVoltageString()
		out[j] = i
		errs[j] = nil
		act = append(act, j)
	}

	// Lockstep Newton: every still-active lane performs one update per
	// sweep — the identical arithmetic, in the identical per-lane order,
	// as the scalar iteration. Lanes that converge commit their warm
	// state at that sweep and drop out; lanes whose update goes
	// non-finite drop to the exact fallback, as the scalar loop's break
	// does.
	for iter := 0; iter < 40 && len(act) > 0; iter++ {
		live := act[:0]
		for _, j := range act {
			s := solvers[j]
			v, i := vs[j], out[j]
			arg := (v + s.a.Rs*i) / ls.vt[j]
			if arg > 500 {
				arg = 500
			}
			em1 := expm1(arg)
			f := ls.il[j] - s.a.I0*em1 - (v+s.a.Rs*i)/s.a.Rp - i
			df := -s.a.I0*(em1+1)*s.a.Rs/ls.vt[j] - s.a.Rs/s.a.Rp - 1
			next := i - f/df
			if math.IsNaN(next) || math.IsInf(next, 0) {
				fb = append(fb, j)
				continue
			}
			if math.Abs(next-i) < 1e-12*(1+math.Abs(i)) {
				s.prevI, s.prevV, s.prevIl, s.prevDf = next, v, ls.il[j], df
				s.warm = true
				out[j] = next
				continue
			}
			out[j] = next
			live = append(live, j)
		}
		act = live
	}
	// Lanes that exhausted the iteration budget fall back too, after the
	// non-finite lanes of earlier sweeps — lane order within one call
	// does not affect per-lane results (solvers are independent).
	fb = append(fb, act...)

	// Exact bracketed fallback, per lane, exactly as the scalar solve.
	for _, j := range fb {
		s := solvers[j]
		iex, err := s.a.CurrentAt(vs[j], gs[j])
		if err == nil {
			s.prevI, s.prevV, s.prevIl, s.prevDf = iex, vs[j], ls.il[j], 0
			s.warm = true
		}
		out[j], errs[j] = iex, err
	}
	ls.act, ls.fb = act[:0], fb[:0]
}
