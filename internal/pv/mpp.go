package pv

import "math"

// MPP describes a maximum power point of the array at some irradiance.
type MPP struct {
	V float64 // voltage at the maximum power point, volts
	I float64 // current at the maximum power point, amps
	P float64 // maximum power, watts
}

// goldenMPPVoltage locates the voltage maximising power over [0, voc] by
// golden-section search; P(V) is unimodal for the single-diode model. It
// is shared by the exact and accelerated MPP solvers so their search
// semantics (bracketing, tolerance, iteration cap) cannot diverge.
func goldenMPPVoltage(voc float64, power func(v float64) float64) float64 {
	const phi = 0.6180339887498949
	lo, hi := 0.0, voc
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := power(x1), power(x2)
	for iter := 0; iter < 200 && hi-lo > 1e-7; iter++ {
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = power(x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = power(x1)
		}
	}
	return 0.5 * (lo + hi)
}

// MaximumPowerPoint locates the MPP at irradiance g by golden-section
// search over [0, Voc]. At zero irradiance it returns a zero MPP.
func (a *Array) MaximumPowerPoint(g float64) (MPP, error) {
	if g <= 0 {
		return MPP{}, nil
	}
	voc, err := a.OpenCircuitVoltage(g)
	if err != nil {
		return MPP{}, err
	}
	v := goldenMPPVoltage(voc, func(v float64) float64 {
		p, perr := a.PowerAt(v, g)
		if perr != nil {
			return math.Inf(-1)
		}
		return p
	})
	i, err := a.CurrentAt(v, g)
	if err != nil {
		return MPP{}, err
	}
	return MPP{V: v, I: i, P: v * i}, nil
}

// AvailablePower returns the maximum extractable power at irradiance g —
// the paper's "estimated available harvested power" used for Fig. 14.
func (a *Array) AvailablePower(g float64) (float64, error) {
	m, err := a.MaximumPowerPoint(g)
	if err != nil {
		return 0, err
	}
	return m.P, nil
}
