// Package trace provides time-series recording and analysis utilities used
// throughout the power-neutral simulation stack: sampled signal storage,
// band/stability metrics, resampling, numerical integration of signals over
// time, CSV export and lightweight ASCII rendering for terminal reports.
//
// All series store (time, value) pairs with time in seconds and the value in
// whatever engineering unit the producer documents (volts, watts, hertz...).
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Series is an append-only sampled signal. Samples are expected to be
// appended in non-decreasing time order; AppendStrict enforces this.
type Series struct {
	// Name identifies the signal (e.g. "Vc", "Pharvest").
	Name string
	// Unit is the engineering unit of Value (e.g. "V", "W", "Hz").
	Unit string

	times  []float64
	values []float64
}

// NewSeries returns an empty series with the given name and unit.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Append adds a sample. Out-of-order times are accepted (some producers
// record pre-sorted blocks); call Sort before analysis if unsure.
func (s *Series) Append(t, v float64) {
	s.times = append(s.times, t)
	s.values = append(s.values, v)
}

// AppendDedupe adds a sample unless it exactly duplicates the last
// recorded (time, value) pair, reporting whether it was appended. Equal
// times with a *different* value are still recorded — that is how a
// zero-order-hold step change (e.g. a power drop at a brownout instant)
// is represented — but exact duplicates would bias the sample-weighted
// Mean() and bloat traces recorded across segmented integrations.
func (s *Series) AppendDedupe(t, v float64) bool {
	if n := len(s.times); n > 0 && s.times[n-1] == t && s.values[n-1] == v {
		return false
	}
	s.Append(t, v)
	return true
}

// AppendStrict adds a sample, returning an error if t precedes the last
// recorded time.
func (s *Series) AppendStrict(t, v float64) error {
	if n := len(s.times); n > 0 && t < s.times[n-1] {
		return fmt.Errorf("trace: sample at t=%g precedes last time %g", t, s.times[n-1])
	}
	s.Append(t, v)
	return nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.times) }

// At returns the i-th sample.
func (s *Series) At(i int) (t, v float64) { return s.times[i], s.values[i] }

// Times returns the underlying time slice. The caller must not modify it.
func (s *Series) Times() []float64 { return s.times }

// Values returns the underlying value slice. The caller must not modify it.
func (s *Series) Values() []float64 { return s.values }

// First returns the first sample. It panics on an empty series.
func (s *Series) First() (t, v float64) { return s.times[0], s.values[0] }

// Last returns the last sample. It panics on an empty series.
func (s *Series) Last() (t, v float64) {
	n := len(s.times) - 1
	return s.times[n], s.values[n]
}

// Duration returns lastTime - firstTime, or 0 for series with <2 samples.
func (s *Series) Duration() float64 {
	if len(s.times) < 2 {
		return 0
	}
	return s.times[len(s.times)-1] - s.times[0]
}

// Sort orders samples by time, preserving the relative order of equal
// timestamps.
func (s *Series) Sort() {
	type pair struct{ t, v float64 }
	ps := make([]pair, len(s.times))
	for i := range s.times {
		ps[i] = pair{s.times[i], s.values[i]}
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].t < ps[j].t })
	for i, p := range ps {
		s.times[i], s.values[i] = p.t, p.v
	}
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	c := &Series{Name: s.Name, Unit: s.Unit}
	c.times = append([]float64(nil), s.times...)
	c.values = append([]float64(nil), s.values...)
	return c
}

// ErrEmpty is returned by analyses that need at least one sample.
var ErrEmpty = errors.New("trace: empty series")

// Min returns the minimum value, or an error for an empty series.
func (s *Series) Min() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m, nil
}

// Max returns the maximum value, or an error for an empty series.
func (s *Series) Max() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean of the sample values (unweighted by
// time), or an error for an empty series.
func (s *Series) Mean() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values)), nil
}

// TimeMean returns the time-weighted mean assuming zero-order hold between
// samples (a sample's value holds until the next sample time).
func (s *Series) TimeMean() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	if len(s.values) == 1 {
		return s.values[0], nil
	}
	var area, dur float64
	for i := 0; i < len(s.times)-1; i++ {
		dt := s.times[i+1] - s.times[i]
		area += s.values[i] * dt
		dur += dt
	}
	if dur == 0 {
		return s.values[0], nil
	}
	return area / dur, nil
}

// Integral returns the trapezoidal integral of the signal over its full
// time span, e.g. energy in joules for a power series in watts.
func (s *Series) Integral() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	var area float64
	for i := 0; i < len(s.times)-1; i++ {
		dt := s.times[i+1] - s.times[i]
		area += 0.5 * (s.values[i] + s.values[i+1]) * dt
	}
	return area, nil
}

// Interp returns the linearly interpolated value at time t. Times outside
// the sampled span clamp to the first/last value.
func (s *Series) Interp(t float64) (float64, error) {
	n := len(s.times)
	if n == 0 {
		return 0, ErrEmpty
	}
	if t <= s.times[0] {
		return s.values[0], nil
	}
	if t >= s.times[n-1] {
		return s.values[n-1], nil
	}
	// Binary search for the bracketing interval.
	i := sort.SearchFloat64s(s.times, t)
	if i > 0 && s.times[i] > t {
		i--
	}
	for i+1 < n && s.times[i+1] <= t {
		i++
	}
	t0, v0 := s.times[i], s.values[i]
	t1, v1 := s.times[i+1], s.values[i+1]
	if t1 == t0 {
		return v1, nil
	}
	frac := (t - t0) / (t1 - t0)
	return v0 + frac*(v1-v0), nil
}

// FractionWithinBand returns the time-weighted fraction of the series
// duration spent with value in [lo, hi], assuming zero-order hold.
// This implements the paper's headline stability metric: the proportion of
// time Vc spends within ±5% of the target voltage.
func (s *Series) FractionWithinBand(lo, hi float64) (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	if len(s.values) == 1 {
		if s.values[0] >= lo && s.values[0] <= hi {
			return 1, nil
		}
		return 0, nil
	}
	var in, total float64
	for i := 0; i < len(s.times)-1; i++ {
		dt := s.times[i+1] - s.times[i]
		total += dt
		if s.values[i] >= lo && s.values[i] <= hi {
			in += dt
		}
	}
	if total == 0 {
		return 0, nil
	}
	return in / total, nil
}

// FractionWithinPercent returns the time-weighted fraction of time the
// signal is within ±pct (e.g. 0.05 for 5%) of target.
func (s *Series) FractionWithinPercent(target, pct float64) (float64, error) {
	d := math.Abs(target * pct)
	return s.FractionWithinBand(target-d, target+d)
}

// TimeBelow returns the total time (zero-order hold) spent strictly below
// the threshold.
func (s *Series) TimeBelow(threshold float64) (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	var below float64
	for i := 0; i < len(s.times)-1; i++ {
		if s.values[i] < threshold {
			below += s.times[i+1] - s.times[i]
		}
	}
	return below, nil
}

// FirstCrossingBelow returns the first sample time at which the value drops
// below the threshold, and ok=false if it never does.
func (s *Series) FirstCrossingBelow(threshold float64) (t float64, ok bool) {
	for i := range s.values {
		if s.values[i] < threshold {
			return s.times[i], true
		}
	}
	return 0, false
}

// Resample returns a new series sampled at a fixed period using linear
// interpolation, spanning the original time range.
func (s *Series) Resample(period float64) (*Series, error) {
	if len(s.times) == 0 {
		return nil, ErrEmpty
	}
	if period <= 0 {
		return nil, fmt.Errorf("trace: non-positive resample period %g", period)
	}
	out := NewSeries(s.Name, s.Unit)
	t0, _ := s.First()
	t1, _ := s.Last()
	// Sample times are computed as t0 + i·period rather than by repeated
	// addition, which accumulates rounding error over long spans (hours of
	// simulated time at sub-second periods drift by many microseconds).
	for i := 0; ; i++ {
		t := t0 + float64(i)*period
		if t > t1+period/2 {
			break
		}
		v, err := s.Interp(t)
		if err != nil {
			return nil, err
		}
		out.Append(t, v)
	}
	return out, nil
}

// Decimate returns a copy keeping every k-th sample (k >= 1), always
// retaining the final sample so the span is preserved.
func (s *Series) Decimate(k int) *Series {
	if k < 1 {
		k = 1
	}
	out := NewSeries(s.Name, s.Unit)
	for i := 0; i < len(s.times); i += k {
		out.Append(s.times[i], s.values[i])
	}
	if n := len(s.times); n > 0 && (n-1)%k != 0 {
		out.Append(s.times[n-1], s.values[n-1])
	}
	return out
}
