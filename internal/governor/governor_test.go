package governor

import (
	"testing"

	"pnps/internal/soc"
)

func fullLoad(o soc.OPP) State { return State{Load: 1, OPP: o, SupplyVolts: 5} }

func idleLoad(o soc.OPP) State { return State{Load: 0.05, OPP: o, SupplyVolts: 5} }

func TestPerformancePinsMax(t *testing.T) {
	g := Performance{}
	o := g.Decide(0, idleLoad(soc.MinOPP()))
	if o.FreqIdx != soc.NumFrequencyLevels-1 {
		t.Errorf("performance picked level %d", o.FreqIdx)
	}
	if o.Config.TotalCores() != 8 {
		t.Error("Linux governors keep all cores online")
	}
}

func TestPowersavePinsMin(t *testing.T) {
	g := Powersave{}
	o := g.Decide(0, fullLoad(soc.MaxOPP()))
	if o.FreqIdx != 0 {
		t.Errorf("powersave picked level %d", o.FreqIdx)
	}
	if o.Config.TotalCores() != 8 {
		t.Error("powersave should keep all cores online")
	}
}

func TestOndemandJumpsToMaxUnderLoad(t *testing.T) {
	g := NewOndemand()
	o := g.Decide(0, fullLoad(soc.MinOPP()))
	if o.FreqIdx != soc.NumFrequencyLevels-1 {
		t.Errorf("ondemand under load picked level %d, want max", o.FreqIdx)
	}
}

func TestOndemandScalesDownWhenIdle(t *testing.T) {
	g := NewOndemand()
	o := g.Decide(0, idleLoad(soc.OPP{FreqIdx: 7, Config: soc.CoreConfig{Little: 4, Big: 4}}))
	if o.FreqIdx >= 7 {
		t.Errorf("ondemand idle picked level %d, want lower", o.FreqIdx)
	}
	// Proportional target must still cover the load.
	covered := soc.FrequencyLevels()[o.FreqIdx] >= 0.05*soc.FrequencyLevels()[7]
	if !covered {
		t.Error("ondemand down-scaling undershoots the load")
	}
}

func TestConservativeStepsOneLevel(t *testing.T) {
	g := NewConservative()
	cur := soc.OPP{FreqIdx: 2, Config: soc.CoreConfig{Little: 4, Big: 4}}
	up := g.Decide(0, fullLoad(cur))
	if up.FreqIdx != 3 {
		t.Errorf("conservative up-step to %d, want 3", up.FreqIdx)
	}
	down := g.Decide(0, idleLoad(cur))
	if down.FreqIdx != 1 {
		t.Errorf("conservative down-step to %d, want 1", down.FreqIdx)
	}
	// Dead zone.
	mid := g.Decide(0, State{Load: 0.5, OPP: cur})
	if mid.FreqIdx != 2 {
		t.Errorf("conservative in dead zone moved to %d", mid.FreqIdx)
	}
	// Bounds.
	top := g.Decide(0, fullLoad(soc.OPP{FreqIdx: 7, Config: cur.Config}))
	if top.FreqIdx != 7 {
		t.Error("conservative stepped past max")
	}
	bottom := g.Decide(0, idleLoad(soc.OPP{FreqIdx: 0, Config: cur.Config}))
	if bottom.FreqIdx != 0 {
		t.Error("conservative stepped past min")
	}
}

func TestConservativeRampDuration(t *testing.T) {
	// Under saturating load the ramp to fmax takes levels×period seconds
	// — the origin of the paper's 5-second conservative lifetime.
	g := NewConservative()
	cur := soc.OPP{FreqIdx: 0, Config: soc.CoreConfig{Little: 4, Big: 4}}
	ticks := 0
	for cur.FreqIdx < soc.NumFrequencyLevels-1 && ticks < 100 {
		cur = g.Decide(float64(ticks)*g.SamplingPeriod(), fullLoad(cur))
		ticks++
	}
	rampSeconds := float64(ticks) * g.SamplingPeriod()
	if rampSeconds < 2 || rampSeconds > 15 {
		t.Errorf("conservative ramp %.1f s, want a few seconds (paper: dies at ≈5 s)", rampSeconds)
	}
}

func TestInteractiveHispeedThenMax(t *testing.T) {
	g := NewInteractive()
	cur := soc.OPP{FreqIdx: 0, Config: soc.CoreConfig{Little: 4, Big: 4}}
	o1 := g.Decide(0, fullLoad(cur))
	if o1.FreqIdx != g.HispeedIdx {
		t.Errorf("first loaded tick picked %d, want hispeed %d", o1.FreqIdx, g.HispeedIdx)
	}
	// Before the above-hispeed delay: hold.
	o2 := g.Decide(0.1, fullLoad(o1))
	if o2.FreqIdx != g.HispeedIdx {
		t.Errorf("pre-delay tick picked %d", o2.FreqIdx)
	}
	// After the delay: max.
	o3 := g.Decide(0.31, fullLoad(o2))
	if o3.FreqIdx != soc.NumFrequencyLevels-1 {
		t.Errorf("post-delay tick picked %d, want max", o3.FreqIdx)
	}
	// Load drop resets the latch and scales down (capped at hispeed).
	o4 := g.Decide(1, idleLoad(o3))
	if o4.FreqIdx > g.HispeedIdx {
		t.Errorf("idle tick picked %d, want <= hispeed", o4.FreqIdx)
	}
	g.Reset()
	if g.armed {
		t.Error("Reset did not clear the hispeed latch")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"performance", "powersave", "ondemand", "conservative", "interactive"} {
		g, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if g.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, g.Name())
		}
		if g.SamplingPeriod() <= 0 {
			t.Errorf("%s sampling period %g", name, g.SamplingPeriod())
		}
	}
	if _, err := ByName("warpspeed"); err == nil {
		t.Error("unknown governor accepted")
	}
}

func TestAllListsFive(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d governors", len(all))
	}
	seen := map[string]bool{}
	for _, g := range all {
		if seen[g.Name()] {
			t.Errorf("duplicate governor %q", g.Name())
		}
		seen[g.Name()] = true
	}
}

func TestDecisionsStayValid(t *testing.T) {
	states := []State{
		fullLoad(soc.MinOPP()), idleLoad(soc.MaxOPP()),
		{Load: 0.5, OPP: soc.OPP{FreqIdx: 3, Config: soc.CoreConfig{Little: 4, Big: 4}}},
	}
	for _, g := range All() {
		for i, st := range states {
			if o := g.Decide(float64(i), st); !o.Valid() {
				t.Errorf("%s produced invalid OPP %v", g.Name(), o)
			}
		}
	}
}
