package sim

// Closed-loop physical-property tests: these check relationships that must
// hold across the whole stack, not point values.

import (
	"testing"

	"pnps/internal/core"
	"pnps/internal/pv"
	"pnps/internal/soc"
)

// shadowScenario is a survivable but stressing profile shared by the
// property tests — the shared Fig. 6 deep shadow, one second later so
// the loop settles first.
func shadowScenario() pv.Profile {
	return pv.DeepShadow(5)
}

func runControlled(t *testing.T, capacitance, vwidth float64, duration float64) *Result {
	t.Helper()
	p := core.DefaultParams()
	if vwidth > 0 {
		p.VWidth = vwidth
	}
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(p, 5.3, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: shadowScenario(),
		Capacitance: capacitance, InitialVC: 5.3, Platform: plat,
		Controller: ctrl, Duration: duration,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLargerCapacitorSlowsDynamics: with more buffering the supply moves
// more slowly, so the controller services fewer threshold interrupts over
// the same scenario.
func TestLargerCapacitorSlowsDynamics(t *testing.T) {
	small := runControlled(t, 22e-3, 0, 15)
	large := runControlled(t, 220e-3, 0, 15)
	if large.Interrupts >= small.Interrupts {
		t.Errorf("interrupts: C=220mF gave %d, C=22mF gave %d — larger buffer should be calmer",
			large.Interrupts, small.Interrupts)
	}
}

// TestWiderHysteresisFiresLess: widening Vwidth (with the same Vq) leaves
// more room between thresholds, reducing crossing frequency.
func TestWiderHysteresisFiresLess(t *testing.T) {
	narrow := runControlled(t, 47e-3, 0.08, 15)
	wide := runControlled(t, 47e-3, 0.40, 15)
	if wide.Interrupts >= narrow.Interrupts {
		t.Errorf("interrupts: wide hysteresis gave %d, narrow gave %d",
			wide.Interrupts, narrow.Interrupts)
	}
}

// TestStaticLoadLadderLifetimes: under a fixed insufficient harvest,
// heavier static OPPs die sooner.
func TestStaticLoadLadderLifetimes(t *testing.T) {
	lifetime := func(opp soc.OPP) float64 {
		plat := soc.NewDefaultPlatform()
		plat.Reset(0, opp)
		res, err := Run(Config{
			Array: pv.SouthamptonArray(), Profile: pv.Constant(450), // ≈2.5 W available
			Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
			Duration: 120, SkipSeries: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.BrownedOut {
			return 120
		}
		return res.FirstBrownout
	}
	mid := lifetime(soc.OPP{FreqIdx: 4, Config: soc.CoreConfig{Little: 4, Big: 1}})
	high := lifetime(soc.OPP{FreqIdx: 6, Config: soc.CoreConfig{Little: 4, Big: 3}})
	max := lifetime(soc.MaxOPP())
	if !(max <= high && high <= mid) {
		t.Errorf("lifetimes not ordered: max=%.2f high=%.2f mid=%.2f", max, high, mid)
	}
	if max >= 120 {
		t.Error("max OPP survived an insufficient harvest")
	}
}

// TestDeterminism: identical configurations produce bit-identical results.
func TestDeterminism(t *testing.T) {
	a := runControlled(t, 47e-3, 0, 12)
	b := runControlled(t, 47e-3, 0, 12)
	if a.Interrupts != b.Interrupts || a.Instructions != b.Instructions ||
		a.FinalVC != b.FinalVC || a.Brownouts != b.Brownouts {
		t.Errorf("non-deterministic results: %+v vs %+v",
			[4]float64{float64(a.Interrupts), a.Instructions, a.FinalVC, float64(a.Brownouts)},
			[4]float64{float64(b.Interrupts), b.Instructions, b.FinalVC, float64(b.Brownouts)})
	}
	av := a.VC.Values()
	bv := b.VC.Values()
	if len(av) != len(bv) {
		t.Fatalf("trace lengths differ: %d vs %d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("VC traces diverge at sample %d", i)
		}
	}
}

// TestControllerBeatsStaticOnWork: over a variable harvest the controller
// must complete more work than the best surviving static configuration,
// because it exploits the surplus the static point leaves unused.
func TestControllerBeatsStaticOnWork(t *testing.T) {
	profile := pv.Sinusoid{Mean: 700, Amplitude: 280, Period: 20}
	const duration = 60.0

	ctrlPlat := soc.NewDefaultPlatform()
	ctrlPlat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctrlRes, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: profile,
		Capacitance: 47e-3, InitialVC: 5.3, Platform: ctrlPlat,
		Controller: ctrl, Duration: duration, SkipSeries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctrlRes.BrownedOut {
		t.Fatal("controller browned out on a survivable sinusoid")
	}

	// The safest static choice that survives the troughs: a LITTLE-only
	// configuration sized for the minimum harvest.
	staticPlat := soc.NewDefaultPlatform()
	staticPlat.Reset(0, soc.OPP{FreqIdx: 2, Config: soc.CoreConfig{Little: 4}})
	staticRes, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: profile,
		Capacitance: 47e-3, InitialVC: 5.3, Platform: staticPlat,
		Duration: duration, SkipSeries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if staticRes.BrownedOut {
		t.Fatal("trough-sized static configuration browned out — rebalance the test")
	}
	if ctrlRes.Instructions <= staticRes.Instructions {
		t.Errorf("controller %.3g instructions did not beat trough-sized static %.3g",
			ctrlRes.Instructions, staticRes.Instructions)
	}
}

// TestMonitorQuantisationCoarseningStillStable: even with a very coarse
// threshold DAC the loop must remain stable (quantisation must degrade,
// not destabilise).
func TestMonitorQuantisationCoarseningStillStable(t *testing.T) {
	plat := soc.NewDefaultPlatform()
	plat.Reset(0, soc.MinOPP())
	ctrl, err := core.New(core.DefaultParams(), 5.3, soc.MinOPP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mc := monitorCoarse()
	res, err := Run(Config{
		Array: pv.SouthamptonArray(), Profile: shadowScenario(),
		Capacitance: 47e-3, InitialVC: 5.3, Platform: plat,
		Controller: ctrl, MonitorConfig: mc, Duration: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BrownedOut {
		t.Error("coarse quantisation destabilised the loop")
	}
}
