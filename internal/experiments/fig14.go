package experiments

import (
	"pnps/internal/trace"
)

// Fig14 regenerates the paper's Fig. 14: estimated available harvested
// power versus power actually consumed by the board over the test day —
// the direct evidence of power neutrality: consumption tracks the harvest
// closely without exceeding it.
func Fig14(seed int64) (*Report, error) {
	res, _, err := fig12Run(seed)
	if err != nil {
		return nil, err
	}

	eAvail, err := res.PowerAvailable.Integral()
	if err != nil {
		return nil, err
	}
	eCons, err := res.PowerConsumed.Integral()
	if err != nil {
		return nil, err
	}
	meanAvail, _ := res.PowerAvailable.TimeMean()
	meanCons, _ := res.PowerConsumed.TimeMean()

	// Fraction of time consumption stays at or below the instantaneous
	// available power (small transients excepted via a 2% tolerance).
	timesA := res.PowerConsumed.Times()
	valsC := res.PowerConsumed.Values()
	var within, total float64
	for i := 0; i+1 < len(timesA); i++ {
		dt := timesA[i+1] - timesA[i]
		avail, err := res.PowerAvailable.Interp(timesA[i])
		if err != nil {
			return nil, err
		}
		total += dt
		if valsC[i] <= avail*1.02 {
			within += dt
		}
	}
	neverExceeds := 0.0
	if total > 0 {
		neverExceeds = within / total
	}

	r := &Report{
		ID:    "fig14",
		Title: "Available vs consumed power over the test day (power neutrality)",
		Description: "Consumed power should track the available harvested power from below: " +
			"good utilisation without over-draw.",
		Series: []*trace.Series{res.PowerAvailable, res.PowerConsumed.Decimate(8)},
	}
	r.AddMetric("mean available power", meanAvail, "W", "paper Fig. 14: ≈2–3.5 W band")
	r.AddMetric("mean consumed power", meanCons, "W", "")
	r.AddMetric("utilisation of harvest (energy)", eCons/eAvail*100, "%",
		"consumed / available energy")
	r.AddMetric("time with consumption ≤ available", neverExceeds*100, "%", "")
	r.AddMetric("energy harvested (consumed)", eCons/3600, "Wh", "")
	r.AddMetric("energy available", eAvail/3600, "Wh", "")
	r.Plots = append(r.Plots,
		trace.ASCIIPlot(res.PowerAvailable, 72, 10),
		trace.ASCIIPlot(res.PowerConsumed.Decimate(32), 72, 10))
	return r, nil
}
