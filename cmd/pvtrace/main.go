// Command pvtrace generates photovoltaic traces: irradiance profiles, the
// array's IV/PV curves, and day-long harvest power traces (the paper's
// Fig. 1 data), exported as CSV for external tooling.
//
// Usage:
//
//	pvtrace -mode day   [-seed N] [-weather full|partial|overcast|hail] [-step S]
//	pvtrace -mode iv    [-irradiance G]
//	pvtrace -mode mpp
//
// Output is CSV on stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"pnps/internal/pv"
	"pnps/internal/trace"
)

func main() {
	var (
		mode       = flag.String("mode", "day", "day | iv | mpp")
		seed       = flag.Int64("seed", 1, "cloud-process seed")
		weather    = flag.String("weather", "partial", "full | partial | overcast | hail")
		step       = flag.Float64("step", 30, "day-trace sampling period, seconds")
		irradiance = flag.Float64("irradiance", pv.StandardIrradiance, "irradiance for -mode iv, W/m²")
	)
	flag.Parse()

	arr := pv.SouthamptonArray()
	switch *mode {
	case "day":
		span := 24 * 3600.0
		var params pv.CloudParams
		switch *weather {
		case "full":
			params = pv.FullSun()
		case "partial":
			params = pv.PartialSun(span)
		case "overcast":
			params = pv.Overcast(span)
		case "hail":
			params = pv.Hailstorm(span)
		default:
			fatal(fmt.Errorf("unknown weather %q", *weather))
		}
		profile := pv.NewClouds(pv.StandardDay(), params, *seed)
		g := trace.NewSeries("irradiance", "W/m2")
		p := trace.NewSeries("Pavailable", "W")
		for t := 0.0; t <= span; t += *step {
			gg := profile.Irradiance(t)
			g.Append(t, gg)
			pp, err := arr.AvailablePower(gg)
			if err != nil {
				fatal(err)
			}
			p.Append(t, pp)
		}
		if err := trace.WriteCSV(os.Stdout, g, p); err != nil {
			fatal(err)
		}
	case "iv":
		pts, err := arr.IVCurve(*irradiance, 101)
		if err != nil {
			fatal(err)
		}
		fmt.Println("V,I,P")
		for _, pt := range pts {
			fmt.Printf("%.4f,%.4f,%.4f\n", pt.V, pt.I, pt.P)
		}
	case "mpp":
		fmt.Println("irradiance,Vmpp,Impp,Pmpp")
		for g := 100.0; g <= 1000; g += 100 {
			m, err := arr.MaximumPowerPoint(g)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%.0f,%.4f,%.4f,%.4f\n", g, m.V, m.I, m.P)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvtrace:", err)
	os.Exit(1)
}
