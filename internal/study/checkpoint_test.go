package study

import (
	"context"
	"strings"
	"testing"
)

// completeCheckpoint runs the contract study to completion and returns
// its checkpoint — the valid baseline the corruption tests mutate.
func completeCheckpoint(t *testing.T) (Study, *Checkpoint) {
	t.Helper()
	st := testStudy(0)
	cp, err := st.RunShard(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Complete() {
		t.Fatal("full shard not complete")
	}
	return st, cp
}

// roundTrip serialises a (possibly corrupted) checkpoint and reads it
// back through the validating deserialisation path.
func roundTrip(cp *Checkpoint) (*Checkpoint, error) {
	var buf strings.Builder
	if err := cp.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return ReadCheckpoint(strings.NewReader(buf.String()))
}

// TestCheckpointRejectsCorruptRecords: the hostile-checkpoint vectors —
// duplicate index, negative index, index ≥ Total, histogram counters
// inconsistent with bins — are rejected with diagnostic errors at every
// consumer boundary (ReadCheckpoint, Merge, Resume, Outcome), never
// silently aggregated.
func TestCheckpointRejectsCorruptRecords(t *testing.T) {
	st, base := completeCheckpoint(t)
	corruptions := []struct {
		name    string
		mutate  func(cp *Checkpoint)
		wantErr string
	}{
		{"duplicate index", func(cp *Checkpoint) {
			cp.Records[1].Index = cp.Records[0].Index
		}, "duplicate"},
		{"negative index", func(cp *Checkpoint) {
			cp.Records[0].Index = -1
		}, "outside ledger"},
		{"index past ledger", func(cp *Checkpoint) {
			cp.Records[len(cp.Records)-1].Index = cp.Total
		}, "outside ledger"},
		{"hist total inconsistent", func(cp *Checkpoint) {
			cp.Records[0].HistTotal = cp.Records[0].HistTotal*2 + 1
		}, "inconsistent with bin sum"},
		{"negative bin weight", func(cp *Checkpoint) {
			cp.Records[0].HistBins[0] = -1
		}, "invalid weight"},
		{"counters without bins", func(cp *Checkpoint) {
			cp.Records[0].HistBins = nil
		}, "counters without bins"},
		{"wrong bin count", func(cp *Checkpoint) {
			cp.Records[0].HistBins = append(cp.Records[0].HistBins, 0)
		}, "study pins"},
		{"too many records", func(cp *Checkpoint) {
			cp.Total = len(cp.Records) - 1
		}, ""}, // any diagnostic error: index-out-of-range or record count
	}
	for _, tc := range corruptions {
		cp := base.clone()
		tc.mutate(cp)

		if _, err := roundTrip(cp); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: ReadCheckpoint error = %v, want %q", tc.name, err, tc.wantErr)
		}
		if _, err := st.Outcome(cp); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Outcome error = %v, want %q", tc.name, err, tc.wantErr)
		}
		if _, err := st.Resume(context.Background(), cp); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Resume error = %v, want %q", tc.name, err, tc.wantErr)
		}
		if err := base.clone().Merge(cp); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Merge error = %v, want %q", tc.name, err, tc.wantErr)
		}
		if _, err := MergeCheckpoints(cp); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: MergeCheckpoints error = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestCheckpointRejectsTruncatedJSON: a checkpoint file cut off
// mid-write fails deserialisation cleanly.
func TestCheckpointRejectsTruncatedJSON(t *testing.T) {
	_, cp := completeCheckpoint(t)
	var buf strings.Builder
	if err := cp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	for _, frac := range []int{2, 4} {
		cut := full[:len(full)/frac]
		if _, err := ReadCheckpoint(strings.NewReader(cut)); err == nil ||
			!strings.Contains(err.Error(), "reading checkpoint") {
			t.Errorf("truncated to 1/%d: error = %v, want decode failure", frac, err)
		}
	}
}

// TestCheckpointCompleteIsStructural: Complete() must not be fooled by
// a record count that matches Total while duplicate indices leave ledger
// gaps — the exact corruption that used to pass as complete and feed
// Outcome wrong data.
func TestCheckpointCompleteIsStructural(t *testing.T) {
	_, cp := completeCheckpoint(t)
	cp.Records[1].Index = cp.Records[0].Index // duplicate; len(Records) == Total still
	cp.rebuildRanges()
	if len(cp.Records) != cp.Total {
		t.Fatal("corruption changed the record count; test is void")
	}
	if cp.Complete() {
		t.Fatal("checkpoint with duplicate indices passed Complete()")
	}
	if err := cp.Validate(); err == nil {
		t.Fatal("checkpoint with duplicate indices passed Validate()")
	}
}

// TestMergeDoesNotAliasSources: MergeCheckpoints documents that none of
// its inputs are mutated — which also requires the merged checkpoint to
// share no backing arrays with them. Mutating the merge result must not
// reach into the source shards.
func TestMergeDoesNotAliasSources(t *testing.T) {
	st := testStudy(0)
	a, err := st.RunShard(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.RunShard(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantA := a.Records[0].HistBins[0]
	wantB := b.Records[0].HistBins[0]

	merged, err := MergeCheckpoints(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range merged.Records {
		for j := range merged.Records[i].HistBins {
			merged.Records[i].HistBins[j] = -12345
		}
	}
	if a.Records[0].HistBins[0] != wantA {
		t.Error("mutating the merge result corrupted shard a's histogram bins")
	}
	if b.Records[0].HistBins[0] != wantB {
		t.Error("mutating the merge result corrupted shard b's histogram bins")
	}

	// In-place Merge must deep-copy too: cp.Merge(other) then mutating
	// cp must leave other untouched.
	cp := a.clone()
	if err := cp.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range cp.Records {
		for j := range cp.Records[i].HistBins {
			cp.Records[i].HistBins[j] = -54321
		}
	}
	if b.Records[0].HistBins[0] != wantB {
		t.Error("mutating the in-place merge target corrupted the source shard")
	}
}
